//! Sequence slicing (§4.1.1).
//!
//! SlimPipe splits every input sequence into `n` *equal-length* slices.
//! The paper argues uniform slicing wins over non-uniform (TeraPipe-style)
//! slicing because (1) accumulated memory is better constrained, (2) the
//! fixed slice length composes with context parallelism, and (3) slices
//! keep sufficient arithmetic intensity. The cost is unequal computation
//! across slices under causal attention — quantified here in attended
//! pairs and fixed by [`crate::exchange`].
//!
//! The pair-balanced variant is provided for the ablation benches.

use slimpipe_model::flops::causal_pairs;

/// How a sequence is partitioned into slices — the policy axis the executor
/// threads end-to-end (uniform is the paper's choice; pair-balanced is the
/// TeraPipe-style ablation; explicit bounds cover everything else).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlicePolicy {
    /// Equal-length slices (§4.1.1). When the slice count does not divide
    /// the sequence, the remainder spreads one token each over the earliest
    /// slices ([`Slicing::even`]), so ragged microbatches still slice.
    Uniform,
    /// TeraPipe-style boundaries equalising attended causal pairs
    /// ([`Slicing::pair_balanced`]).
    PairBalanced,
    /// Caller-supplied boundaries (`bounds.len() == n + 1`, `bounds[0] == 0`,
    /// strictly increasing, `bounds[n] ==` the sequence length).
    Explicit(Vec<u64>),
    /// Caller-supplied boundaries *per microbatch* — what the slicing
    /// planner emits: `per_mb[mb]` is microbatch `mb`'s bounds vector, so
    /// both the bounds and the slice count may differ across microbatches
    /// (ragged workloads slice each sequence on its own terms).
    ExplicitPerMb(Vec<Vec<u64>>),
}

impl SlicePolicy {
    /// Short stable tag for snapshots, logs, and bench series ids.
    pub fn tag(&self) -> &'static str {
        match self {
            SlicePolicy::Uniform => "uniform",
            SlicePolicy::PairBalanced => "pair_balanced",
            SlicePolicy::Explicit(_) => "explicit",
            SlicePolicy::ExplicitPerMb(_) => "planned",
        }
    }
}

/// A slicing of one sequence into contiguous slices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slicing {
    /// Sequence length in tokens.
    pub seq: u64,
    /// Slice boundaries: `bounds[i]..bounds[i+1]` is slice `i`;
    /// `bounds.len() == n + 1`, `bounds[0] == 0`, `bounds[n] == seq`.
    pub bounds: Vec<u64>,
}

impl Slicing {
    /// Uniform slicing into `n` equal slices (requires `n | seq`).
    pub fn uniform(seq: u64, n: usize) -> Self {
        assert!(n > 0 && seq > 0, "need positive seq and n");
        assert!(
            seq.is_multiple_of(n as u64),
            "uniform slicing requires n ({n}) to divide seq ({seq})"
        );
        let l = seq / n as u64;
        Self { seq, bounds: (0..=n as u64).map(|i| i * l).collect() }
    }

    /// Near-uniform slicing for *any* `seq >= n` — the ragged-aware
    /// constructor: `seq mod n` leftover tokens go one each to the earliest
    /// slices, so every slice has `⌈seq/n⌉` or `⌊seq/n⌋` tokens. Identical
    /// to [`Slicing::uniform`] whenever `n | seq`.
    pub fn even(seq: u64, n: usize) -> Self {
        assert!(n > 0 && seq > 0, "need positive seq and n");
        assert!(n as u64 <= seq, "more slices than tokens");
        let (base, extra) = (seq / n as u64, seq % n as u64);
        let mut bounds = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        bounds.push(0);
        for i in 0..n as u64 {
            acc += base + u64::from(i < extra);
            bounds.push(acc);
        }
        Self { seq, bounds }
    }

    /// Slicing from caller-supplied boundaries; panics on invalid bounds
    /// (the graceful path is [`Slicing::try_explicit`]).
    pub fn explicit(seq: u64, bounds: Vec<u64>) -> Self {
        Self::try_explicit(seq, bounds).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Slicing::explicit`] — the single place the explicit-bounds
    /// invariants live, shared by the panicking constructor and config
    /// validation.
    pub fn try_explicit(seq: u64, bounds: Vec<u64>) -> Result<Self, String> {
        if bounds.len() < 2 {
            return Err("explicit bounds need at least one slice".into());
        }
        if bounds[0] != 0 {
            return Err(format!("explicit bounds must start at 0, got {}", bounds[0]));
        }
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!(
                "explicit bounds must be strictly increasing: {bounds:?}"
            ));
        }
        if *bounds.last().unwrap() != seq {
            return Err(format!(
                "explicit bounds must end at seq ({seq}), got {}",
                bounds.last().unwrap()
            ));
        }
        Ok(Self { seq, bounds })
    }

    /// The slicing a policy induces for one sequence of `seq` tokens cut
    /// into `n` slices — the single constructor the executor, simulator,
    /// and benches all route through. Per-microbatch policies need a
    /// microbatch index: use [`Slicing::for_microbatch`].
    pub fn from_policy(policy: &SlicePolicy, seq: u64, n: usize) -> Self {
        match policy {
            SlicePolicy::Uniform => Self::even(seq, n),
            SlicePolicy::PairBalanced => Self::pair_balanced(seq, n),
            SlicePolicy::Explicit(bounds) => {
                assert_eq!(bounds.len(), n + 1, "explicit bounds for {n} slices");
                Self::explicit(seq, bounds.clone())
            }
            SlicePolicy::ExplicitPerMb(_) => {
                panic!("per-microbatch bounds need a microbatch index; use Slicing::for_microbatch")
            }
        }
    }

    /// The slicing a policy induces for microbatch `mb` of `seq` tokens.
    /// `n` is the requested slice count for this microbatch — ignored by
    /// [`SlicePolicy::ExplicitPerMb`], whose stored bounds carry their own
    /// count (asserted equal when the caller passes the per-mb count it
    /// derived from the same plan).
    pub fn for_microbatch(policy: &SlicePolicy, mb: usize, seq: u64, n: usize) -> Self {
        match policy {
            SlicePolicy::ExplicitPerMb(per_mb) => {
                let bounds = &per_mb[mb];
                assert_eq!(
                    bounds.len(),
                    n + 1,
                    "microbatch {mb}: per-mb bounds describe {} slices, caller expects {n}",
                    bounds.len() - 1
                );
                Self::explicit(seq, bounds.clone())
            }
            other => Self::from_policy(other, seq, n),
        }
    }

    /// Pair-balanced (TeraPipe-style) slicing: boundaries chosen so each
    /// slice attends approximately the same number of causal pairs, which
    /// makes early slices long and late slices short.
    pub fn pair_balanced(seq: u64, n: usize) -> Self {
        assert!(n > 0 && seq > 0, "need positive seq and n");
        assert!(n as u64 <= seq, "more slices than tokens");
        // Cumulative pairs up to position x is x(x+1)/2 ≈ x²/2, so the
        // boundary for an equal share i/n sits near seq·sqrt(i/n).
        let mut bounds: Vec<u64> = (0..=n)
            .map(|i| ((seq as f64) * ((i as f64) / n as f64).sqrt()).round() as u64)
            .collect();
        bounds[0] = 0;
        bounds[n] = seq;
        // Enforce strict monotonicity (at least one token per slice).
        for i in 1..=n {
            let min = bounds[i - 1] + 1;
            let max = seq - (n - i) as u64;
            bounds[i] = bounds[i].clamp(min, max);
        }
        Self { seq, bounds }
    }

    /// Number of slices.
    pub fn n(&self) -> usize {
        self.bounds.len() - 1
    }

    /// `(start, length)` of slice `i`.
    pub fn slice(&self, i: usize) -> (u64, u64) {
        (self.bounds[i], self.bounds[i + 1] - self.bounds[i])
    }

    /// Length of slice `i`.
    pub fn len(&self, i: usize) -> u64 {
        self.bounds[i + 1] - self.bounds[i]
    }

    /// True when the slicing covers no tokens (never constructible).
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }

    /// Causal pairs attended by slice `i` (its attention workload).
    pub fn pairs(&self, i: usize) -> u128 {
        let (start, len) = self.slice(i);
        causal_pairs(start, len)
    }

    /// Total pairs over all slices (= pairs of the unsliced sequence).
    pub fn total_pairs(&self) -> u128 {
        causal_pairs(0, self.seq)
    }

    /// Ratio of the heaviest to the lightest slice workload — the imbalance
    /// context exchange must absorb (`(2n-1)`:1 for uniform slicing).
    pub fn imbalance(&self) -> f64 {
        let (mut min, mut max) = (u128::MAX, 0u128);
        for i in 0..self.n() {
            let p = self.pairs(i);
            min = min.min(p);
            max = max.max(p);
        }
        max as f64 / min as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_slices_have_equal_length() {
        let s = Slicing::uniform(4096, 8);
        for i in 0..8 {
            assert_eq!(s.len(i), 512);
        }
        assert_eq!(s.n(), 8);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn uniform_requires_divisibility() {
        let _ = Slicing::uniform(100, 3);
    }

    #[test]
    fn pairs_partition_regardless_of_slicing() {
        for s in [Slicing::uniform(1024, 4), Slicing::pair_balanced(1024, 4)] {
            let total: u128 = (0..s.n()).map(|i| s.pairs(i)).sum();
            assert_eq!(total, s.total_pairs());
        }
    }

    #[test]
    fn uniform_imbalance_is_2n_minus_1() {
        // Slice 0 attends l(l+1)/2 pairs, slice n-1 attends (n-1)l² + l(l+1)/2:
        // ratio → 2n-1 for large l.
        let n = 8;
        let s = Slicing::uniform(8 * 4096, n);
        let ratio = s.imbalance();
        assert!((ratio - (2.0 * n as f64 - 1.0)).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn pair_balanced_is_much_flatter() {
        let uniform = Slicing::uniform(16384, 8);
        let balanced = Slicing::pair_balanced(16384, 8);
        assert!(balanced.imbalance() < 1.4);
        assert!(uniform.imbalance() > 10.0);
        // ...but its slices are wildly unequal in *length* (the memory
        // problem the paper's §4.1.1 points out).
        let lens: Vec<u64> = (0..8).map(|i| balanced.len(i)).collect();
        assert!(lens[0] > 4 * lens[7], "{lens:?}");
    }

    #[test]
    fn even_equals_uniform_when_divisible() {
        assert_eq!(Slicing::even(4096, 8), Slicing::uniform(4096, 8));
    }

    #[test]
    fn even_spreads_the_remainder_over_early_slices() {
        let s = Slicing::even(46, 4); // 12, 12, 11, 11
        assert_eq!(s.bounds, vec![0, 12, 24, 35, 46]);
        let total: u128 = (0..s.n()).map(|i| s.pairs(i)).sum();
        assert_eq!(total, s.total_pairs());
    }

    #[test]
    fn explicit_roundtrips_and_validates() {
        let s = Slicing::explicit(100, vec![0, 50, 75, 100]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.slice(1), (50, 25));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn explicit_rejects_empty_slices() {
        let _ = Slicing::explicit(10, vec![0, 4, 4, 10]);
    }

    #[test]
    fn from_policy_dispatches() {
        assert_eq!(
            Slicing::from_policy(&SlicePolicy::Uniform, 64, 4),
            Slicing::uniform(64, 4)
        );
        assert_eq!(
            Slicing::from_policy(&SlicePolicy::PairBalanced, 64, 4),
            Slicing::pair_balanced(64, 4)
        );
        let b = vec![0, 40, 64];
        assert_eq!(
            Slicing::from_policy(&SlicePolicy::Explicit(b.clone()), 64, 2).bounds,
            b
        );
    }

    #[test]
    fn pair_balanced_covers_sequence_exactly() {
        for n in [2usize, 3, 7, 16] {
            let s = Slicing::pair_balanced(10_000, n);
            assert_eq!(s.bounds[0], 0);
            assert_eq!(*s.bounds.last().unwrap(), 10_000);
            assert!(s.bounds.windows(2).all(|w| w[0] < w[1]), "n={n}: {:?}", s.bounds);
        }
    }
}
