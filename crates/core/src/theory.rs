//! Closed-form theory: Eq. 1, Table 2, and the Figure 6 curves.
//!
//! Activation memory is expressed relative to `M_a` — the total activation
//! footprint of *one* microbatch through the *whole* model (so classic
//! 1F1B's "constant activation memory" is exactly `1.0`, regardless of
//! `p`). Bubble fractions follow Table 2's formulas; ZB-V and V-Half are
//! intervals whose position depends on how far the workload departs from
//! the `T_f = T_b = T_w` ideal — we expose the ends and an interpolation in
//! the attention share of compute.

/// The pipeline schemes of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    GPipe,
    TeraPipe,
    OneFOneB,
    Interleaved,
    ZbV,
    VHalf,
    SlimPipe,
}

impl Scheme {
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::GPipe => "GPipe",
            Scheme::TeraPipe => "TeraPipe",
            Scheme::OneFOneB => "Default 1F1B",
            Scheme::Interleaved => "Interleaved 1F1B",
            Scheme::ZbV => "ZB-V",
            Scheme::VHalf => "V-Half",
            Scheme::SlimPipe => "SlimPipe",
        }
    }

    /// All rows of Table 2, in the paper's order.
    pub fn table2() -> [Scheme; 7] {
        [
            Scheme::GPipe,
            Scheme::TeraPipe,
            Scheme::OneFOneB,
            Scheme::Interleaved,
            Scheme::ZbV,
            Scheme::VHalf,
            Scheme::SlimPipe,
        ]
    }
}

/// Table 2 "Activation Memory" column: worst-device peak activation
/// relative to `M_a` (one microbatch, whole model).
pub fn act_memory_rel(scheme: Scheme, p: usize, m: usize, n: usize, v: usize) -> f64 {
    let (pf, mf, nf, vf) = (p as f64, m as f64, n as f64, v as f64);
    match scheme {
        Scheme::GPipe | Scheme::TeraPipe => mf / pf,
        Scheme::OneFOneB => (mf / pf).min(1.0),
        Scheme::Interleaved => (1.0 + (pf - 1.0) / (vf * pf)).min(mf / pf),
        Scheme::ZbV => 1.0,
        Scheme::VHalf => 0.5 + 1.0 / pf,
        Scheme::SlimPipe => 1.0 / pf + 2.0 * (pf - 1.0) / (nf * vf * pf),
    }
}

/// Table 2 "Bubble Fraction" column (point estimates; for the interval
/// schemes this is the *lower* end — the `T_f = T_b = T_w` ideal).
pub fn bubble_fraction_ideal(scheme: Scheme, p: usize, m: usize, n: usize, v: usize) -> f64 {
    let (pf, mf, nf, vf) = (p as f64, m as f64, n as f64, v as f64);
    match scheme {
        Scheme::GPipe => (pf - 1.0) / mf,
        Scheme::TeraPipe => (pf - 1.0) / (nf * mf),
        Scheme::OneFOneB => (pf - 1.0) / mf,
        Scheme::Interleaved => (pf - 1.0) / (vf * mf),
        Scheme::ZbV => 0.0,
        Scheme::VHalf => pf / (2.0 * mf),
        Scheme::SlimPipe => (pf - 1.0) / (nf * vf * mf),
    }
}

/// Upper ends of the interval schemes (Table 2's daggered entries), which
/// "increase with longer context length": ZB-V's `2(p−1)/(3m)` and
/// V-Half's `1/3 + p/(2m)`. For non-interval schemes this equals the ideal.
pub fn bubble_fraction_worst(scheme: Scheme, p: usize, m: usize, n: usize, v: usize) -> f64 {
    let (pf, mf) = (p as f64, m as f64);
    match scheme {
        Scheme::ZbV => 2.0 * (pf - 1.0) / (3.0 * mf),
        Scheme::VHalf => 1.0 / 3.0 + pf / (2.0 * mf),
        _ => bubble_fraction_ideal(scheme, p, m, n, v),
    }
}

/// Interpolated bubble fraction for the interval schemes, parameterised by
/// the attention share of total compute `alpha ∈ [0, 1]` (the farther the
/// workload departs from `T_f=T_b=T_w`, the closer to the worst end —
/// attention has `T_b ≈ 2·T_f` and `T_w = 0`, §2.2).
pub fn bubble_fraction_at(
    scheme: Scheme,
    p: usize,
    m: usize,
    n: usize,
    v: usize,
    alpha: f64,
) -> f64 {
    let lo = bubble_fraction_ideal(scheme, p, m, n, v);
    let hi = bubble_fraction_worst(scheme, p, m, n, v);
    lo + (hi - lo) * alpha.clamp(0.0, 1.0)
}

/// §4.1.3: with extremely long context (attention-dominated compute) the
/// SlimPipe bubble fraction becomes `(p−1)p / ((n+1)·n·v·m)` — smaller than
/// the generic bound because warm-up slices are the *cheap* early ones.
pub fn slimpipe_bubble_attention_dominated(p: usize, m: usize, n: usize, v: usize) -> f64 {
    let (pf, mf, nf, vf) = (p as f64, m as f64, n as f64, v as f64);
    (pf - 1.0) * pf / ((nf + 1.0) * nf * vf * mf)
}

/// Eq. 1: accumulated activation relative to `M_a`:
/// `M_acc = (1 + δ)·M_a/p`, `δ = 2(p−1)/n` (plain form, v = 1).
pub fn eq1_accumulated(p: usize, n: usize) -> f64 {
    let delta = 2.0 * (p as f64 - 1.0) / n as f64;
    (1.0 + delta) / p as f64
}

/// Figure 6a: activation memory (relative to `M_a`) as a function of the
/// slice count, for a given `p` (v = 1). `n = 0` encodes "no slicing"
/// (default 1F1B) and returns 1.
pub fn fig6a_curve(p: usize, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    eq1_accumulated(p, n)
}

/// Figure 6b: warm-up bubble fraction vs slice count for given `m`
/// (`p` fixed by the caller, v = 1). `n = 0` encodes "no slicing".
pub fn fig6b_curve(p: usize, m: usize, n: usize) -> f64 {
    if n == 0 {
        return bubble_fraction_ideal(Scheme::OneFOneB, p, m, 1, 1);
    }
    bubble_fraction_ideal(Scheme::SlimPipe, p, m, n, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_memory_column_ordering() {
        // With m ≥ p (so 1F1B reaches its full accumulation):
        // SlimPipe < V-Half < 1F1B = ZB-V.
        let (p, m, n) = (8, 8, 32);
        let slim = act_memory_rel(Scheme::SlimPipe, p, m, n, 1);
        let vhalf = act_memory_rel(Scheme::VHalf, p, m, n, 1);
        let ofob = act_memory_rel(Scheme::OneFOneB, p, m, n, 1);
        let zbv = act_memory_rel(Scheme::ZbV, p, m, n, 1);
        assert!(slim < vhalf);
        assert!(vhalf < ofob);
        assert_eq!(ofob, zbv);
        assert_eq!(ofob, 1.0, "classic PP activation is constant = M_a");
    }

    #[test]
    fn slimpipe_memory_approaches_one_over_p() {
        let p = 8;
        let wide = act_memory_rel(Scheme::SlimPipe, p, 4, 64 * p, 1);
        assert!((wide - 1.0 / p as f64).abs() < 0.01);
        // And it decreases monotonically in n (Figure 6a).
        let mut prev = f64::MAX;
        for mult in 1..=6 {
            let x = fig6a_curve(p, mult * p);
            assert!(x < prev);
            prev = x;
        }
    }

    #[test]
    fn eq1_matches_table2_row() {
        for p in [2usize, 4, 8, 16] {
            for n in [p, 2 * p, 4 * p] {
                let eq1 = eq1_accumulated(p, n);
                let t2 = act_memory_rel(Scheme::SlimPipe, p, 4, n, 1);
                assert!((eq1 - t2).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn slimpipe_bubble_is_smallest() {
        let (p, m, n, v) = (8, 4, 32, 1);
        let slim = bubble_fraction_ideal(Scheme::SlimPipe, p, m, n, v);
        for s in [Scheme::GPipe, Scheme::OneFOneB, Scheme::Interleaved, Scheme::VHalf] {
            assert!(slim < bubble_fraction_ideal(s, p, m, n, v), "{s:?}");
        }
        // Only the ZB ideal (unreachable with attention) ties at zero.
        assert!(slim > bubble_fraction_ideal(Scheme::ZbV, p, m, n, v));
    }

    #[test]
    fn interval_schemes_degrade_with_attention_share() {
        let (p, m) = (8, 4);
        let zbv_ideal = bubble_fraction_at(Scheme::ZbV, p, m, 1, 1, 0.0);
        let zbv_long = bubble_fraction_at(Scheme::ZbV, p, m, 1, 1, 0.9);
        assert_eq!(zbv_ideal, 0.0);
        assert!(zbv_long > 0.3);
        // SlimPipe is attention-share independent (context exchange).
        let s0 = bubble_fraction_at(Scheme::SlimPipe, p, m, 32, 1, 0.0);
        let s9 = bubble_fraction_at(Scheme::SlimPipe, p, m, 32, 1, 0.9);
        assert_eq!(s0, s9);
    }

    #[test]
    fn attention_dominated_bound_is_tighter() {
        // §4.1.3: the long-context bubble (p−1)p/((n+1)nvm) is below the
        // generic (p−1)/(nvm) whenever p < n+1 — always true (n ≥ p).
        for p in [2usize, 4, 8] {
            for mult in [1usize, 2, 4] {
                let n = p * mult;
                let generic = bubble_fraction_ideal(Scheme::SlimPipe, p, 4, n, 1);
                let tight = slimpipe_bubble_attention_dominated(p, 4, n, 1);
                assert!(tight <= generic + 1e-12, "p={p} n={n}");
            }
        }
    }

    #[test]
    fn fig6b_is_monotone_decreasing_in_n() {
        let (p, _) = (4usize, ());
        for m in [2usize, 4, 8] {
            let mut prev = fig6b_curve(p, m, 0);
            for mult in 1..=6 {
                let x = fig6b_curve(p, m, mult * p);
                assert!(x < prev, "m={m} mult={mult}");
                prev = x;
            }
        }
    }
}
