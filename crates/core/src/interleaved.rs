//! SlimPipe in its interleaving form (§4.1.2, Figure 5).
//!
//! Each device hosts `v` model chunks. Forward units walk
//! `(microbatch asc, slice-group asc, chunk asc, slice-within-group asc)`
//! where a slice-group is `p` consecutive slices; backward units walk the
//! exact mirror `(mb asc, group desc, chunk desc, slice desc)` — both read
//! directly off Figure 5's device rows. Rank `r` warms up with
//! `v·n + 2(p-1-r)` forward units, then alternates backward/forward.
//!
//! Accumulation on rank 0: `v·n + 2(p-1)` units of `M_a/(p·v·n)` each —
//! Table 2's `1/p + 2(p-1)/(n·v·p)`.

use slimpipe_sched::{Schedule, ScheduleError, WorkItem};

/// Build the interleaved SlimPipe schedule: `p` devices, `v` chunks per
/// device, `m` microbatches, `n` slices per microbatch (`p | n`).
pub fn generate(p: usize, v: usize, m: usize, n: usize) -> Result<Schedule, ScheduleError> {
    if p == 0 || v == 0 || m == 0 || n == 0 {
        return Err(ScheduleError::Infeasible("p, v, m, n must be positive".into()));
    }
    if !n.is_multiple_of(p) {
        return Err(ScheduleError::Infeasible(format!(
            "SlimPipe requires the slice count ({n}) to be a multiple of the \
             pipeline size ({p})"
        )));
    }
    if v == 1 {
        let mut s = crate::schedule::generate(p, m, n)?;
        s.name = "SlimPipe (v=1)".into();
        return Ok(s);
    }
    let groups = n / p;
    let per_mb = n * v;
    let total = m * per_mb;
    // Forward unit k -> WorkItem.
    let f_unit = |k: usize| -> WorkItem {
        let mb = k / per_mb;
        let rem = k % per_mb;
        let group = rem / (p * v);
        let within = rem % (p * v);
        let chunk = within / p;
        let slice = group * p + within % p;
        WorkItem::f(mb as u32, slice as u32, chunk as u32)
    };
    // Backward unit k -> mirrored walk.
    let b_unit = |k: usize| -> WorkItem {
        let mb = k / per_mb;
        let rem = k % per_mb;
        let group = groups - 1 - rem / (p * v);
        let within = rem % (p * v);
        let chunk = v - 1 - within / p;
        let slice = group * p + (p - 1 - within % p);
        WorkItem::b(mb as u32, slice as u32, chunk as u32)
    };
    let mut ops = Vec::with_capacity(p);
    for r in 0..p {
        let warmup = (v * n + 2 * (p - 1 - r)).min(total);
        let mut dev = Vec::with_capacity(2 * total);
        let mut f = 0usize;
        let mut b = 0usize;
        for _ in 0..warmup {
            dev.push(f_unit(f));
            f += 1;
        }
        while f < total {
            dev.push(b_unit(b));
            b += 1;
            dev.push(f_unit(f));
            f += 1;
        }
        while b < total {
            dev.push(b_unit(b));
            b += 1;
        }
        ops.push(dev);
    }
    Ok(Schedule {
        name: "SlimPipe interleaved".into(),
        devices: p,
        chunks: v,
        microbatches: m,
        slices: n,
        mb_slices: None,
        split_backward: false,
        stage_map: Schedule::contiguous_stage_map(p, v),
        ops,
    })
}

/// Peak accumulated slice-chunk units on rank `r` (Figure 5's geometry).
pub fn warmup_units(p: usize, v: usize, m: usize, n: usize, r: usize) -> usize {
    (v * n + 2 * (p - 1 - r)).min(m * n * v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_sched::{validate, PassKind};

    #[test]
    fn validates_for_a_grid_of_sizes() {
        for p in [2usize, 4] {
            for v in [2usize, 3] {
                for m in [1usize, 2, 3] {
                    for mult in [1usize, 2] {
                        let n = p * mult;
                        let s = generate(p, v, m, n).unwrap();
                        validate(&s)
                            .unwrap_or_else(|e| panic!("p={p} v={v} m={m} n={n}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn figure5_geometry() {
        // p=4, v=2, m=2, n=8: warmups 22 (rank 0) down to 16 (rank 3).
        let s = generate(4, 2, 2, 8).unwrap();
        let first_b = |d: usize| {
            s.ops[d].iter().position(|o| o.kind == PassKind::Backward).unwrap()
        };
        assert_eq!(first_b(0), 22);
        assert_eq!(first_b(3), 16);
        // Rank 3's first backward is slice 8 (index 7) of chunk 1 — the
        // "[8̄ 1]" cell of Figure 5's bottom row.
        let op = s.ops[3][16];
        assert_eq!(op, WorkItem::b(0, 7, 1));
    }

    #[test]
    fn forward_walk_matches_figure5_row() {
        // Device rows of Figure 5 read: slices 1-4 chunk0, 1-4 chunk1,
        // 5-8 chunk0, 5-8 chunk1, then microbatch 2.
        let s = generate(4, 2, 2, 8).unwrap();
        let fwd: Vec<(u32, u32, u32)> = s.ops[0]
            .iter()
            .filter(|o| o.kind == PassKind::Forward)
            .map(|o| (o.mb, o.slice, o.chunk))
            .collect();
        let expect_head = [
            (0, 0, 0), (0, 1, 0), (0, 2, 0), (0, 3, 0),
            (0, 0, 1), (0, 1, 1), (0, 2, 1), (0, 3, 1),
            (0, 4, 0), (0, 5, 0), (0, 6, 0), (0, 7, 0),
            (0, 4, 1), (0, 5, 1), (0, 6, 1), (0, 7, 1),
            (1, 0, 0),
        ];
        assert_eq!(&fwd[..expect_head.len()], &expect_head);
    }

    #[test]
    fn accumulation_matches_table2() {
        for (p, v, m, n) in [(4usize, 2usize, 2usize, 8usize), (2, 3, 2, 4)] {
            let s = generate(p, v, m, n).unwrap();
            for r in 0..p {
                let mut inflight = 0i64;
                let mut peak = 0i64;
                for op in &s.ops[r] {
                    match op.kind {
                        PassKind::Forward => inflight += 1,
                        PassKind::Backward => inflight -= 1,
                        _ => {}
                    }
                    peak = peak.max(inflight);
                }
                assert_eq!(peak as usize, warmup_units(p, v, m, n, r));
            }
        }
    }

    #[test]
    fn interleaving_cuts_relative_overhead() {
        // Table 2: relative activation = 1/p + 2(p-1)/(nvp); the overhead
        // term shrinks by v.
        let (p, n, m) = (4usize, 8usize, 2usize);
        let v1 = warmup_units(p, 1, m, n, 0) as f64 / (1.0 * n as f64); // / (v·n) units per Ma/p
        let v2 = warmup_units(p, 2, m, n, 0) as f64 / (2.0 * n as f64);
        assert!(v2 < v1);
    }
}
