//! SlimPipe — the paper's contribution (§4).
//!
//! Fine-grained pipeline parallelism with **uniform sequence slicing**
//! coupled to a 1F1B schedule:
//!
//! * [`slicing`] — uniform (and, for ablation, pair-balanced non-uniform)
//!   sequence slicing with exact causal-pair workload accounting (§4.1.1);
//! * [`schedule`] — the slice-wise 1F1B schedule of Figure 4: LIFO backward
//!   within each microbatch, KV chunks released as their backward completes,
//!   and `2(p-1-rank)` extra warm-up forwards to align forward and backward
//!   passes (§4.1.2);
//! * [`interleaved`] — the interleaving form of Figure 5 (`v` stages per
//!   device), shrinking both accumulation and warm-up bubbles by `v`;
//! * [`exchange`] — attention context exchange (§4.2): per-round workload
//!   rebalancing that moves `(Q, KV-chunk)` attention tasks from heavy to
//!   light devices, with Eq. 2's communication-volume accounting and the
//!   early-KV-exchange overlap rule (§5);
//! * [`vocab_parallel`] — vocabulary parallelism (§4.3): the output-layer
//!   GEMM and cross-entropy distributed column-wise over pipeline devices;
//! * [`theory`] — the closed forms of Eq. 1, Table 2, and Figure 6;
//! * [`memory`] — schedule-walk activation accounting shared by every
//!   scheme (the ground truth the theory is tested against).

pub mod exchange;
pub mod interleaved;
pub mod memory;
pub mod schedule;
pub mod slicing;
pub mod theory;
pub mod vocab_parallel;

pub use exchange::{plan_round, plan_round_slicing, ExchangePlan};
pub use slicing::{SlicePolicy, Slicing};
pub use theory::Scheme;
