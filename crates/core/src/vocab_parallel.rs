//! Vocabulary parallelism (§4.3).
//!
//! The output layer projects hidden states into a 128 000-wide vocabulary;
//! assigning it to the last pipeline device creates both a compute bubble
//! (Figure 9) and a huge fp32 logits stash (§3). SlimPipe parallelises the
//! GEMM column-wise across all `p` pipeline devices: the hidden states are
//! broadcast, every device computes its logits shard, and the cross-entropy
//! is evaluated from sharded logits with only scalar statistics
//! synchronised (see `slimpipe_tensor::crossentropy` for the executable
//! math). This module provides the cost/memory model consumed by the
//! simulator and planner.

use slimpipe_model::{ModelConfig, FP32};

/// Costs of one output-layer evaluation over `tokens` tokens.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VocabCost {
    /// GEMM + cross-entropy FLOPs executed per participating device.
    pub flops_per_device: f64,
    /// Bytes broadcast to each participating device (hidden states).
    pub broadcast_bytes: f64,
    /// Bytes of scalar statistics synchronised per device (two passes of
    /// 3 fp32 scalars per token).
    pub stats_bytes: f64,
    /// fp32 logits bytes resident per device until the unit's backward.
    pub logits_bytes_per_device: f64,
    /// Number of devices sharing the work.
    pub shards: usize,
}

/// Cost model of the output layer.
///
/// * `vocab_parallel = false`: the classic placement — the last device does
///   everything (`shards = tp` only).
/// * `vocab_parallel = true`: SlimPipe's distribution over `p` pipeline
///   devices on top of TP.
pub fn output_layer_cost(
    model: &ModelConfig,
    tokens: u64,
    tp: usize,
    p: usize,
    vocab_parallel: bool,
) -> VocabCost {
    let h = model.hidden as f64;
    let total_flops = model.output_fwd_flops(tokens) / tp as f64;
    if vocab_parallel {
        VocabCost {
            flops_per_device: total_flops / p as f64,
            // Sequence-parallel hidden states are already sharded by tp;
            // each of the other p-1 devices receives the full slice.
            broadcast_bytes: tokens as f64 * h / tp as f64 * 2.0,
            stats_bytes: tokens as f64 * 3.0 * FP32 * 2.0,
            logits_bytes_per_device: model.logits_bytes(tokens, tp * p),
            shards: p,
        }
    } else {
        VocabCost {
            flops_per_device: total_flops,
            broadcast_bytes: 0.0,
            stats_bytes: 0.0,
            logits_bytes_per_device: model.logits_bytes(tokens, tp),
            shards: 1,
        }
    }
}

/// The §4.3 argument in one number: ratio of synchronised bytes with and
/// without sharded-loss statistics (gathering logits vs. syncing scalars).
pub fn stats_vs_gather_ratio(model: &ModelConfig, tokens: u64, tp: usize, p: usize) -> f64 {
    let gather = model.logits_bytes(tokens, tp * p) * (p as f64 - 1.0);
    let stats = tokens as f64 * 3.0 * FP32 * 2.0;
    stats / gather
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_model::GIB;

    #[test]
    fn vocab_parallel_divides_flops_and_logits_by_p() {
        let m = ModelConfig::llama_13b();
        let classic = output_layer_cost(&m, 262_144, 8, 4, false);
        let vp = output_layer_cost(&m, 262_144, 8, 4, true);
        assert!((classic.flops_per_device / vp.flops_per_device - 4.0).abs() < 1e-9);
        assert!(
            (classic.logits_bytes_per_device / vp.logits_bytes_per_device - 4.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn classic_logits_blow_up_at_long_context() {
        // §3's 16 GiB example lands on the last device without §4.3.
        let m = ModelConfig::llama_13b();
        let classic = output_layer_cost(&m, 262_144, 8, 8, false);
        assert!(classic.logits_bytes_per_device / GIB > 15.0);
        let vp = output_layer_cost(&m, 262_144, 8, 8, true);
        assert!(vp.logits_bytes_per_device / GIB < 2.0);
    }

    #[test]
    fn scalar_stats_are_tiny_versus_gathering() {
        let m = ModelConfig::llama_13b();
        let ratio = stats_vs_gather_ratio(&m, 65_536, 8, 8);
        assert!(ratio < 1e-2, "stats should be ≪ logits gather: {ratio}");
    }

    #[test]
    fn broadcast_is_linear_in_tokens() {
        let m = ModelConfig::llama_70b();
        let a = output_layer_cost(&m, 1024, 8, 4, true);
        let b = output_layer_cost(&m, 2048, 8, 4, true);
        assert!((b.broadcast_bytes / a.broadcast_bytes - 2.0).abs() < 1e-12);
    }
}
