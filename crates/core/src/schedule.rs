//! The SlimPipe slice-wise 1F1B schedule (§4.1.2, Figure 4).
//!
//! Construction rules, read directly off the paper's Figure 4:
//!
//! * Forward units run `(microbatch asc, slice asc)` — slices append to the
//!   KV cache in order.
//! * Backward units run `(microbatch asc, slice DESC)` — the last-in
//!   first-out order that lets each backward release its slice's KV chunk
//!   immediately, keeping steady-state memory flat.
//! * Rank `r` warms up with `n + 2(p-1-r)` forwards ("we put more forward
//!   passes ahead to align forward and backward passes separately" — the
//!   factor 2 accounts for backward ≈ 2× forward), then strictly
//!   alternates backward/forward, then drains backwards.
//!
//! The resulting accumulation on rank 0 is `n + 2(p-1)` slices of
//! `M_a/(p·n)` each — Eq. 1's `(1+δ)·M_a/p` with `δ = 2(p-1)/n`.

use slimpipe_sched::{Schedule, ScheduleError, WorkItem};

/// Build the plain (non-interleaved) SlimPipe schedule: `p` devices,
/// `m` microbatches, `n` slices per microbatch.
pub fn generate(p: usize, m: usize, n: usize) -> Result<Schedule, ScheduleError> {
    if m == 0 {
        return Err(ScheduleError::Infeasible("p, m, n must be positive".into()));
    }
    generate_var(p, &vec![n; m])
}

/// Build the SlimPipe schedule with a *per-microbatch* slice count —
/// microbatch `mb` is cut into `mb_slices[mb]` slices (each a multiple of
/// `p`, so the §4.2.1 staircase structure holds within every microbatch).
///
/// Construction is the same as the uniform generator's: forwards run in
/// `(microbatch asc, slice asc)` order, backwards in `(microbatch asc,
/// slice DESC)` order, and rank `r` warms up with `n₀ + 2(p-1-r)` forwards
/// (`n₀` = the first microbatch's slice count — the accumulation that sets
/// the Eq. 1 peak) before strictly alternating backward/forward. With all
/// counts equal this reduces exactly to [`generate`] (and the returned
/// schedule's `mb_slices` is normalised to `None` so downstream uniform
/// paths are unchanged).
pub fn generate_var(p: usize, mb_slices: &[usize]) -> Result<Schedule, ScheduleError> {
    let m = mb_slices.len();
    if p == 0 || m == 0 || mb_slices.contains(&0) {
        return Err(ScheduleError::Infeasible("p, m, n must be positive".into()));
    }
    for &n in mb_slices {
        if !n.is_multiple_of(p) {
            return Err(ScheduleError::Infeasible(format!(
                "SlimPipe requires every slice count ({n}) to be a multiple \
                 of the pipeline size ({p})"
            )));
        }
    }
    // Flattened unit streams every rank consumes in the same order.
    let f_units: Vec<WorkItem> = mb_slices
        .iter()
        .enumerate()
        .flat_map(|(mb, &n)| (0..n).map(move |s| WorkItem::f(mb as u32, s as u32, 0)))
        .collect();
    let b_units: Vec<WorkItem> = mb_slices
        .iter()
        .enumerate()
        .flat_map(|(mb, &n)| (0..n).rev().map(move |s| WorkItem::b(mb as u32, s as u32, 0)))
        .collect();
    let total = f_units.len();
    let n0 = mb_slices[0];
    // Flattened forward index of each backward unit's own forward — the
    // local-readiness bound: backward `k` cannot be issued before this many
    // forwards have run on the same rank.
    let fwd_prefix: Vec<usize> = mb_slices
        .iter()
        .scan(0usize, |acc, &n| {
            let p = *acc;
            *acc += n;
            Some(p)
        })
        .collect();
    let fidx_of_b: Vec<usize> = b_units
        .iter()
        .map(|u| fwd_prefix[u.mb as usize] + u.slice as usize)
        .collect();
    let mut ops = Vec::with_capacity(p);
    for r in 0..p {
        let warmup = (n0 + 2 * (p - 1 - r)).min(total);
        let mut dev = Vec::with_capacity(2 * total);
        let mut f = 0usize;
        let mut b = 0usize;
        for _ in 0..warmup {
            dev.push(f_units[f]);
            f += 1;
        }
        while f < total {
            // Strict backward/forward alternation, except when the next
            // backward's own forward is still ahead of us (a later
            // microbatch with more slices than the first): catch up with
            // forwards first. Uniform counts never take this branch, so
            // the uniform op lists are byte-identical to the classic
            // generator's.
            if fidx_of_b[b] < f {
                dev.push(b_units[b]);
                b += 1;
            }
            dev.push(f_units[f]);
            f += 1;
        }
        while b < total {
            dev.push(b_units[b]);
            b += 1;
        }
        ops.push(dev);
    }
    let max_n = mb_slices.iter().copied().max().unwrap();
    let uniform = mb_slices.iter().all(|&n| n == max_n);
    Ok(Schedule {
        name: "SlimPipe".into(),
        devices: p,
        chunks: 1,
        microbatches: m,
        slices: max_n,
        mb_slices: (!uniform).then(|| mb_slices.to_vec()),
        split_backward: false,
        stage_map: Schedule::contiguous_stage_map(p, 1),
        ops,
    })
}

/// Slices accumulated at the warm-up peak on rank `r` (Figure 4's
/// annotation): `n + 2(p-1-r)`, capped by the total work.
pub fn warmup_slices(p: usize, m: usize, n: usize, r: usize) -> usize {
    (n + 2 * (p - 1 - r)).min(m * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_sched::{validate, PassKind};

    #[test]
    fn validates_for_a_grid_of_sizes() {
        for p in [1usize, 2, 4, 8] {
            for m in [1usize, 2, 4] {
                for mult in [1usize, 2, 4] {
                    let n = p * mult;
                    let s = generate(p, m, n).unwrap();
                    validate(&s).unwrap_or_else(|e| panic!("p={p} m={m} n={n}: {e}"));
                }
            }
        }
    }

    #[test]
    fn rejects_n_not_multiple_of_p() {
        assert!(generate(4, 2, 6).is_err());
        assert!(generate(4, 2, 8).is_ok());
        assert!(generate_var(4, &[8, 6]).is_err());
        assert!(generate_var(4, &[8, 0]).is_err());
    }

    #[test]
    fn variable_counts_validate_for_a_grid() {
        for p in [1usize, 2, 4] {
            for counts in [
                vec![p, 2 * p],
                vec![2 * p, p],
                vec![4 * p, p, 2 * p],
                vec![p, p, 4 * p, 2 * p],
                vec![3 * p, 2 * p, p],
            ] {
                let s = generate_var(p, &counts).unwrap();
                validate(&s).unwrap_or_else(|e| panic!("p={p} counts={counts:?}: {e}"));
                assert_eq!(s.mb_slices.as_deref(), Some(&counts[..]));
                assert_eq!(s.slices, counts.iter().copied().max().unwrap());
            }
        }
    }

    #[test]
    fn uniform_counts_normalise_to_the_uniform_generator() {
        let a = generate(4, 3, 8).unwrap();
        let b = generate_var(4, &[8, 8, 8]).unwrap();
        assert!(b.mb_slices.is_none());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.slices, b.slices);
    }

    #[test]
    fn variable_counts_keep_backward_lifo_and_forward_order() {
        let s = generate_var(2, &[4, 8, 2]).unwrap();
        for dev in &s.ops {
            // Forwards appear in (mb asc, slice asc) order; backwards in
            // (mb asc, slice desc) order.
            let fwd: Vec<(u32, u32)> = dev
                .iter()
                .filter(|o| o.kind == PassKind::Forward)
                .map(|o| (o.mb, o.slice))
                .collect();
            let mut sorted = fwd.clone();
            sorted.sort_unstable();
            assert_eq!(fwd, sorted);
            let bwd: Vec<(u32, u32)> = dev
                .iter()
                .filter(|o| o.kind == PassKind::Backward)
                .map(|o| (o.mb, o.slice))
                .collect();
            let mut expect = Vec::new();
            for (mb, &n) in [4usize, 8, 2].iter().enumerate() {
                for sl in (0..n).rev() {
                    expect.push((mb as u32, sl as u32));
                }
            }
            assert_eq!(bwd, expect);
        }
    }

    #[test]
    fn figure4_device_rows() {
        // p=4, n=8: first backward lands after n + 2(p-1-r) forwards.
        let s = generate(4, 3, 8).unwrap();
        let first_b = |d: usize| {
            s.ops[d].iter().position(|o| o.kind == PassKind::Backward).unwrap()
        };
        assert_eq!(first_b(0), 14);
        assert_eq!(first_b(1), 12);
        assert_eq!(first_b(2), 10);
        assert_eq!(first_b(3), 8);
        // Device 4 (last rank): after F1..F8 of mb0 the first backward is
        // slice 8 of mb0 (LIFO), then F1 of mb1 — exactly Figure 4.
        let last = &s.ops[3];
        assert_eq!(last[8], WorkItem::b(0, 7, 0));
        assert_eq!(last[9], WorkItem::f(1, 0, 0));
        assert_eq!(last[10], WorkItem::b(0, 6, 0));
    }

    #[test]
    fn backward_is_lifo_within_each_microbatch() {
        let s = generate(2, 3, 4).unwrap();
        for dev in &s.ops {
            let mut last_seen: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::new();
            for op in dev {
                if op.kind == PassKind::Backward {
                    if let Some(&prev) = last_seen.get(&op.mb) {
                        assert_eq!(op.slice, prev - 1, "backward not LIFO");
                    }
                    last_seen.insert(op.mb, op.slice);
                }
            }
        }
    }

    #[test]
    fn accumulation_matches_eq1() {
        // Peak in-flight slices on rank r == n + 2(p-1-r) (Eq. 1's units).
        for (p, m, n) in [(4usize, 3usize, 8usize), (8, 2, 16), (2, 4, 6)] {
            let s = generate(p, m, n).unwrap();
            for r in 0..p {
                let mut inflight = 0i64;
                let mut peak = 0i64;
                for op in &s.ops[r] {
                    match op.kind {
                        PassKind::Forward => inflight += 1,
                        PassKind::Backward => inflight -= 1,
                        _ => {}
                    }
                    peak = peak.max(inflight);
                }
                assert_eq!(
                    peak as usize,
                    warmup_slices(p, m, n, r),
                    "p={p} m={m} n={n} r={r}"
                );
            }
        }
    }

    #[test]
    fn slimpipe_beats_1f1b_memory_for_n_above_two_p_minus_one() {
        // 1F1B accumulates p·n slice-equivalents (p microbatches); SlimPipe
        // accumulates n + 2(p-1). SlimPipe wins whenever p > 1.
        let (p, n) = (8usize, 32usize);
        let slim = warmup_slices(p, 4, n, 0);
        let classic = p * n / p * p; // p microbatches of n slices / ... = p·n
        assert!(slim * p < classic * 2, "slim={slim} classic_units={classic}");
        // Eq. 1 sanity: (1+δ)/p of classic 1F1B's M_a.
        let delta = 2.0 * (p as f64 - 1.0) / n as f64;
        assert_eq!(slim as f64, n as f64 * (1.0 + delta));
    }
}
