//! Attention context exchange (§4.2): eliminate imbalance bubbles by
//! redistributing attention work between pipeline devices.
//!
//! With uniform slicing, the device computing slice `j` attends `j+1` KV
//! chunks while a device on slice 0 attends one — "at a specific moment,
//! the workloads across pipeline devices conform to an arithmetic
//! progression" (§4.2.1), and at a microbatch juncture the spread reaches
//! `n-1` chunks. The fix (§4.2.2): a heavy device sends its query plus a
//! portion of its cached key-value to a light device, which computes the
//! partial attention there and returns the output for an online-softmax
//! merge.
//!
//! This module plans that redistribution for one pipeline *round* (the set
//! of slices concurrently in flight): a greedy rebalancer moves whole
//! `(Q, KV-chunk)` tasks from the most- to the least-loaded device until no
//! move helps, which provably leaves the spread at most one KV slice —
//! matching §4.2.2's "the difference between them is at most one slice of
//! key-value". Moved KV chunks are always the *earliest* chunks, so the
//! transfer can be issued as soon as those chunks exist — the paper's §5
//! "Early Key-Value Exchange" overlap rule.
//!
//! Communication volume is counted in slice-tensor units and checked
//! against Eq. 2's closed form and its bound `Θ ≤ (2 − (p−1)/n)·L·M_h`.

/// One attention task: queries of `q_owner`'s current slice against one KV
/// chunk. `executor == q_owner` means no communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkTask {
    /// Device whose slice the queries belong to.
    pub q_owner: usize,
    /// Device that computes this task.
    pub executor: usize,
    /// KV chunk (slice index) attended.
    pub kv_chunk: u32,
    /// Whether this is the diagonal (own-slice, causally masked) chunk.
    pub diagonal: bool,
    /// Workload in attended pairs.
    pub pairs: u128,
}

/// Plan for one pipeline round.
#[derive(Clone, Debug)]
pub struct ExchangePlan {
    /// Slice index each device is processing this round (`None` = idle,
    /// e.g. during warm-up or cool-down).
    pub slices: Vec<Option<u32>>,
    /// All attention tasks of this round, after redistribution.
    pub tasks: Vec<ChunkTask>,
    /// Attended pairs executed per device after redistribution.
    pub load: Vec<u128>,
}

impl ExchangePlan {
    /// Ratio of heaviest to lightest per-device load (1.0 = perfect).
    pub fn balance_ratio(&self) -> f64 {
        let active: Vec<u128> = self.load.iter().copied().filter(|&l| l > 0).collect();
        if active.is_empty() {
            return 1.0;
        }
        let max = *active.iter().max().unwrap() as f64;
        let min = *active.iter().min().unwrap() as f64;
        max / min
    }

    /// Largest minus smallest per-device load, in pairs.
    pub fn spread(&self) -> u128 {
        let max = self.load.iter().copied().max().unwrap_or(0);
        let min = self
            .load
            .iter()
            .copied()
            .filter(|&l| l > 0 || self.slices.iter().all(|s| s.is_none()))
            .min()
            .unwrap_or(0);
        max.saturating_sub(self.load.iter().copied().min().unwrap_or(min))
    }

    /// Communication of this round in *slice-tensor units* (one unit = one
    /// slice of one of Q/K/V/O on one device's layer share), summed over
    /// devices: each moved task group costs 1 Q + 1 O per distinct
    /// `(owner, executor)` pair plus 2 units (K and V) per moved chunk.
    pub fn comm_slice_units(&self) -> u64 {
        use std::collections::HashSet;
        let mut qo_pairs: HashSet<(usize, usize)> = HashSet::new();
        let mut units = 0u64;
        for t in &self.tasks {
            if t.executor != t.q_owner {
                units += 2; // K and V of one chunk
                qo_pairs.insert((t.q_owner, t.executor));
            }
        }
        units + 2 * qo_pairs.len() as u64 // Q out + O back per pair
    }

    /// Tasks a given executor runs for other devices.
    pub fn remote_tasks_of(&self, executor: usize) -> Vec<ChunkTask> {
        self.tasks
            .iter()
            .copied()
            .filter(|t| t.executor == executor && t.q_owner != executor)
            .collect()
    }
}

/// Workload of the diagonal chunk (causal within the slice).
fn diag_pairs(l: u64) -> u128 {
    (l as u128 * (l as u128 + 1)) / 2
}

/// Workload of one full off-diagonal chunk: `q_len` queries attending every
/// one of `kv_len` keys.
fn full_pairs(q_len: u64, kv_len: u64) -> u128 {
    q_len as u128 * kv_len as u128
}

/// Plan one round of uniform slicing. `slices[r]` is the slice index device
/// `r` works on this round (`None` if the device is idle this round);
/// `slice_len` is the uniform slice length in tokens.
///
/// The greedy invariant: only off-diagonal chunks move (the diagonal chunk
/// needs the just-produced KV and the causal mask), the earliest chunks
/// move first (early-KV-exchange), and a move happens only while it
/// strictly reduces the max-min spread.
pub fn plan_round(slices: &[Option<u32>], slice_len: u64) -> ExchangePlan {
    plan_round_with(slices, &|_| slice_len)
}

/// Plan one round under an explicit [`crate::Slicing`] — slice volumes come
/// from the actual token bounds, so pair-balanced and ragged partitions get
/// correctly weighted exchange plans (a short late slice contributes a small
/// off-diagonal task, not a uniform-sized one).
pub fn plan_round_slicing(slices: &[Option<u32>], slicing: &crate::Slicing) -> ExchangePlan {
    plan_round_with(slices, &|c| slicing.len(c))
}

/// Shared planner core: `chunk_tokens(c)` gives the token length of slice
/// `c` (constant for uniform slicing). Workloads are exact attended pairs:
/// the diagonal chunk of slice `j` is causal within itself
/// (`l_j(l_j+1)/2`), an off-diagonal chunk `c < j` is the full
/// `l_j × l_c` rectangle.
#[allow(clippy::while_let_loop)] // two let-else exits; while-let fits only one
fn plan_round_with(
    slices: &[Option<u32>],
    chunk_tokens: &dyn Fn(usize) -> u64,
) -> ExchangePlan {
    let p = slices.len();
    let mut tasks: Vec<ChunkTask> = Vec::new();
    let mut load = vec![0u128; p];
    // Movable off-diagonal chunks per owner as `(chunk, pairs)`, earliest
    // chunk last so pop() yields it (early-KV-exchange).
    let mut movable: Vec<Vec<(u32, u128)>> = vec![Vec::new(); p];
    for (r, s) in slices.iter().enumerate() {
        let Some(j) = *s else { continue };
        let q_len = chunk_tokens(j as usize);
        tasks.push(ChunkTask {
            q_owner: r,
            executor: r,
            kv_chunk: j,
            diagonal: true,
            pairs: diag_pairs(q_len),
        });
        load[r] += diag_pairs(q_len);
        for c in 0..j {
            let pairs = full_pairs(q_len, chunk_tokens(c as usize));
            movable[r].push((c, pairs));
            load[r] += pairs;
        }
        movable[r].reverse(); // pop() yields the earliest chunk
    }
    // Greedy: move one earliest chunk from the most-loaded device whose
    // move still *strictly* shrinks the spread between it and the
    // min-loaded device. With non-uniform weights the globally heaviest
    // device's earliest chunk may be too heavy to help while a lighter
    // device's chunk still does, so candidacy is per-device, not
    // max-only. (Uniform weights: every device shares one unit, so this
    // picks exactly the classic max-loaded candidate.)
    loop {
        let lo = (0..p)
            .filter(|&r| slices[r].is_some())
            .min_by_key(|&r| load[r])
            .expect("at least one active device");
        let Some(hi) = (0..p)
            .filter(|&r| r != lo)
            .filter(|&r| {
                movable[r]
                    .last()
                    .is_some_and(|&(_, unit)| load[r] > load[lo] + unit)
            })
            .max_by_key(|&r| load[r])
        else {
            // No movable chunk shrinks any pairwise spread; a further move
            // would only ping-pong the imbalance between devices.
            break;
        };
        let (chunk, pairs) = movable[hi].pop().expect("hi has movable work");
        load[hi] -= pairs;
        load[lo] += pairs;
        tasks.push(ChunkTask {
            q_owner: hi,
            executor: lo,
            kv_chunk: chunk,
            diagonal: false,
            pairs,
        });
    }
    // Remaining movable chunks execute locally.
    for (r, chunks) in movable.into_iter().enumerate() {
        for (c, pairs) in chunks {
            tasks.push(ChunkTask {
                q_owner: r,
                executor: r,
                kv_chunk: c,
                diagonal: false,
                pairs,
            });
        }
    }
    ExchangePlan { slices: slices.to_vec(), tasks, load }
}

/// The slices concurrently in flight at steady-state round `t` of the
/// plain SlimPipe schedule: device `r` works slice `(t - r) mod n`,
/// wrapping into the next microbatch at junctures (§4.2.1).
pub fn steady_round_slices(p: usize, n: usize, t: usize) -> Vec<Option<u32>> {
    (0..p)
        .map(|r| Some(((t + n - (r % n)) % n) as u32))
        .collect()
}

/// Eq. 2's exact per-microbatch per-device exchanged volume, in units of
/// `L·M_h` (the unsliced Q/K/V/O size across the whole model):
///
/// `Θ = [2n + 2(n−p+1)·⌊(p−1)/2⌋ + 2(p−1)·⌊(n−1)/2⌋] · L·M_h/(p·n)`
pub fn theta_formula(p: usize, n: usize) -> f64 {
    assert!(n >= p && p >= 1, "needs n >= p >= 1");
    let (pf, nf) = (p as f64, n as f64);
    let qo = 2.0 * nf;
    let kv_steady = 2.0 * (nf - pf + 1.0) * ((p - 1) / 2) as f64;
    let kv_juncture = 2.0 * (pf - 1.0) * ((n - 1) / 2) as f64;
    (qo + kv_steady + kv_juncture) / (pf * nf)
}

/// Eq. 2's bound: `Θ ≤ (2 − (p−1)/n)·L·M_h`.
pub fn theta_bound(p: usize, n: usize) -> f64 {
    2.0 - (p as f64 - 1.0) / n as f64
}

/// Measured exchanged volume of one steady-state microbatch, per device,
/// in `L·M_h` units: runs the planner over the `n` rounds of one
/// microbatch window. Counting convention: each tensor slice is counted
/// once "on the wire" (Eq. 2 counts each device's sends *and* receives, so
/// the formula is roughly 2× this wire count; we assert against the bound,
/// which holds for both conventions).
pub fn measured_volume_per_device(p: usize, n: usize, slice_len: u64) -> f64 {
    let mut total_units = 0u64;
    for t in 0..n {
        let plan = plan_round(&steady_round_slices(p, n, t), slice_len);
        total_units += plan.comm_slice_units();
    }
    // One slice-unit = L·M_h/(p·n) bytes; average per device = total / p.
    total_units as f64 / (p as f64 * n as f64) / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_rounds_cover_all_slices() {
        let p = 4;
        let n = 8;
        for r in 0..p {
            let mut seen: Vec<u32> = (0..n)
                .map(|t| steady_round_slices(p, n, t)[r].unwrap())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn plan_balances_to_one_chunk_spread() {
        let l = 128u64;
        let unit = full_pairs(l, l);
        // Steady state and juncture rounds for several (p, n).
        for (p, n) in [(4usize, 8usize), (8, 16), (6, 12), (2, 4)] {
            for t in 0..n {
                let plan = plan_round(&steady_round_slices(p, n, t), l);
                assert!(
                    plan.spread() <= unit,
                    "p={p} n={n} t={t}: spread {} > one chunk {unit}",
                    plan.spread()
                );
            }
        }
    }

    #[test]
    fn no_plan_needed_when_loads_equal() {
        // All devices on the same slice index → already balanced → no moves.
        let plan = plan_round(&[Some(3), Some(3), Some(3), Some(3)], 64);
        assert!(plan.tasks.iter().all(|t| t.q_owner == t.executor));
        assert_eq!(plan.comm_slice_units(), 0);
    }

    #[test]
    fn juncture_round_moves_the_most() {
        let (p, n, l) = (4usize, 8usize, 128u64);
        // Steady round: slices {3,2,1,0}; juncture: {0,7,6,5}.
        let steady = plan_round(&steady_round_slices(p, n, 3), l);
        let juncture = plan_round(&steady_round_slices(p, n, 8), l);
        assert!(juncture.comm_slice_units() >= steady.comm_slice_units());
    }

    #[test]
    fn moved_chunks_are_earliest_first() {
        // §5 Early Key-Value Exchange: shipped chunks must be the lowest
        // indices the owner holds, so they can be sent ahead of time.
        let plan = plan_round(&steady_round_slices(4, 8, 8), 64);
        for owner in 0..4 {
            let mut moved: Vec<u32> = plan
                .tasks
                .iter()
                .filter(|t| t.q_owner == owner && t.executor != owner)
                .map(|t| t.kv_chunk)
                .collect();
            moved.sort_unstable();
            for (i, c) in moved.iter().enumerate() {
                assert_eq!(*c as usize, i, "moved chunks not a prefix: {moved:?}");
            }
        }
    }

    #[test]
    fn diagonal_tasks_never_move() {
        for t in 0..8 {
            let plan = plan_round(&steady_round_slices(4, 8, t), 64);
            for task in &plan.tasks {
                if task.diagonal {
                    assert_eq!(task.q_owner, task.executor);
                }
            }
        }
    }

    #[test]
    fn pairs_are_conserved_by_redistribution() {
        for t in 0..8 {
            let slices = steady_round_slices(4, 8, t);
            let plan = plan_round(&slices, 64);
            let task_total: u128 = plan.tasks.iter().map(|t| t.pairs).sum();
            let load_total: u128 = plan.load.iter().sum();
            assert_eq!(task_total, load_total);
            let raw_total: u128 = slices
                .iter()
                .map(|s| {
                    let j = s.unwrap() as u128;
                    j * full_pairs(64, 64) + diag_pairs(64)
                })
                .sum();
            assert_eq!(task_total, raw_total);
        }
    }

    #[test]
    fn theta_bound_holds_for_formula() {
        for p in [2usize, 4, 8, 16] {
            for mult in [1usize, 2, 4, 8] {
                let n = p * mult;
                assert!(
                    theta_formula(p, n) <= theta_bound(p, n) + 1e-12,
                    "p={p} n={n}: {} > {}",
                    theta_formula(p, n),
                    theta_bound(p, n)
                );
            }
        }
    }

    #[test]
    fn theta_is_at_most_2_lmh() {
        // §4.2.3: "This volume is at most 2·L·M_h, virtually independent
        // from the PP size and number of slices."
        for p in [2usize, 4, 8, 16, 32] {
            for mult in [1usize, 2, 4] {
                assert!(theta_formula(p, p * mult) <= 2.0);
            }
        }
    }

    #[test]
    fn measured_volume_respects_eq2_bound() {
        for (p, n) in [(4usize, 8usize), (4, 16), (8, 16), (2, 8)] {
            let measured = measured_volume_per_device(p, n, 128);
            let bound = theta_bound(p, n);
            assert!(
                measured <= bound + 1e-9,
                "p={p} n={n}: measured {measured} > bound {bound}"
            );
        }
    }

    #[test]
    fn slicing_plan_conserves_pairs_and_keeps_diagonals_local() {
        // Pair-balanced bounds: wildly unequal slice lengths.
        let slicing = crate::Slicing::pair_balanced(1024, 8);
        for t in 0..8 {
            let slices = steady_round_slices(4, 8, t);
            let plan = plan_round_slicing(&slices, &slicing);
            let task_total: u128 = plan.tasks.iter().map(|t| t.pairs).sum();
            let load_total: u128 = plan.load.iter().sum();
            assert_eq!(task_total, load_total);
            // Raw workload of the round, from the actual bounds.
            let raw: u128 = slices
                .iter()
                .map(|s| {
                    let j = s.unwrap() as usize;
                    let lj = slicing.len(j);
                    (0..j)
                        .map(|c| full_pairs(lj, slicing.len(c)))
                        .sum::<u128>()
                        + diag_pairs(lj)
                })
                .sum();
            assert_eq!(task_total, raw, "t={t}");
            for task in &plan.tasks {
                if task.diagonal {
                    assert_eq!(task.q_owner, task.executor);
                }
            }
        }
    }

    #[test]
    fn slicing_plan_weights_moves_by_actual_volume() {
        // A juncture-like round under pair-balanced slicing: the device on
        // the last (short) slice has a big off-diagonal load from the long
        // early chunks; moved tasks must carry their true pair counts.
        let slicing = crate::Slicing::pair_balanced(1024, 8);
        let plan = plan_round_slicing(&[Some(7), Some(0)], &slicing);
        let before_spread = {
            let j = 7usize;
            let lj = slicing.len(j);
            let a: u128 = (0..j).map(|c| full_pairs(lj, slicing.len(c))).sum::<u128>()
                + diag_pairs(lj);
            let b = diag_pairs(slicing.len(0));
            a.max(b) - a.min(b)
        };
        assert!(plan.spread() <= before_spread, "plan must not widen the spread");
        for t in &plan.tasks {
            if t.executor != t.q_owner {
                assert_eq!(
                    t.pairs,
                    full_pairs(slicing.len(7), slicing.len(t.kv_chunk as usize)),
                    "moved task must be weighted by its real chunk volume"
                );
            }
        }
    }

    #[test]
    fn uniform_plan_round_equals_slicing_plan_round() {
        // plan_round is the uniform special case of plan_round_slicing.
        let slicing = crate::Slicing::uniform(8 * 64, 8);
        for t in 0..8 {
            let slices = steady_round_slices(4, 8, t);
            let a = plan_round(&slices, 64);
            let b = plan_round_slicing(&slices, &slicing);
            assert_eq!(a.tasks, b.tasks, "t={t}");
            assert_eq!(a.load, b.load, "t={t}");
        }
    }

    #[test]
    fn idle_devices_get_no_diagonal_but_can_execute() {
        // Warm-up round: only two devices active; planner may still move
        // work onto... no — idle devices have no query slice, but CAN serve
        // as executors only if active. Current policy: idle devices are
        // skipped entirely.
        let plan = plan_round(&[Some(5), Some(4), None, None], 64);
        assert_eq!(plan.load[2], 0);
        assert_eq!(plan.load[3], 0);
        // Active devices still end up balanced among themselves.
        assert!(plan.load[0] > 0 && plan.load[1] > 0);
    }
}
