//! Schedule-walk activation accounting — the ground truth behind Table 2.
//!
//! Instead of trusting closed forms, this module walks any schedule's op
//! list and tracks in-flight work units per device (forward allocates, the
//! *releasing* backward kind frees). A unit is one `(microbatch-slice,
//! chunk)` pass, so converting to bytes only needs the per-unit activation
//! size. The theory module's formulas are tested against these walks.

use slimpipe_sched::{PassKind, Schedule, WorkItem};

/// Peak in-flight work units on `device`. For split-backward schemes the
/// stash is released by `BackwardWeight` (the weight gradient still needs
/// the stashed inputs); otherwise by `Backward`.
pub fn peak_units(sched: &Schedule, device: usize) -> usize {
    let release = if sched.split_backward {
        PassKind::BackwardWeight
    } else {
        PassKind::Backward
    };
    let mut inflight = 0i64;
    let mut peak = 0i64;
    for op in &sched.ops[device] {
        if op.kind == PassKind::Forward {
            inflight += 1;
        } else if op.kind == release {
            inflight -= 1;
        }
        peak = peak.max(inflight);
    }
    peak as usize
}

/// Worst peak across devices.
pub fn worst_peak_units(sched: &Schedule) -> usize {
    (0..sched.devices).map(|d| peak_units(sched, d)).max().unwrap_or(0)
}

/// Peak in-flight units restricted to the chunk hosting the *last* global
/// stage on `device` (0 if the device does not host it). This is what
/// sizes the fp32 logits stash when the output layer is not
/// vocabulary-parallel.
pub fn peak_last_stage_units(sched: &Schedule, device: usize) -> usize {
    let last = sched.num_stages() - 1;
    let Some(chunk) = (0..sched.chunks).find(|&c| sched.stage_of(device, c) == last)
    else {
        return 0;
    };
    let release = if sched.split_backward {
        PassKind::BackwardWeight
    } else {
        PassKind::Backward
    };
    let mut inflight = 0i64;
    let mut peak = 0i64;
    for op in &sched.ops[device] {
        if op.chunk as usize != chunk {
            continue;
        }
        if op.kind == PassKind::Forward {
            inflight += 1;
        } else if op.kind == release {
            inflight -= 1;
        }
        peak = peak.max(inflight);
    }
    peak as usize
}

/// Convert a device's peak units to bytes. `m_a` is the activation bytes of
/// one full microbatch through the whole model (per TP rank); the unit size
/// is `m_a / (p · v · n)`.
pub fn peak_bytes(sched: &Schedule, device: usize, m_a: f64) -> f64 {
    let unit = m_a / (sched.devices * sched.chunks * sched.slices) as f64;
    peak_units(sched, device) as f64 * unit
}

/// Peak resident bytes on `device` under a *per-unit* byte weighting: the
/// same schedule walk as [`peak_units`], but each in-flight unit contributes
/// `unit_bytes(op)` instead of 1. This is the accounting non-uniform
/// slicings and ragged microbatches need — a long early slice must weigh
/// more than a short late one — and it reduces exactly to
/// `peak_units · unit` when every unit has equal weight.
pub fn peak_bytes_by(
    sched: &Schedule,
    device: usize,
    unit_bytes: &dyn Fn(&WorkItem) -> f64,
) -> f64 {
    peak_bytes_by_filtered(sched, device, unit_bytes, None)
}

/// [`peak_bytes_by`] restricted to the chunk hosting the *last* global
/// stage on `device` (0.0 if the device does not host it) — the weighted
/// counterpart of [`peak_last_stage_units`], sizing the logits stash.
pub fn peak_last_stage_bytes_by(
    sched: &Schedule,
    device: usize,
    unit_bytes: &dyn Fn(&WorkItem) -> f64,
) -> f64 {
    let last = sched.num_stages() - 1;
    let Some(chunk) = (0..sched.chunks).find(|&c| sched.stage_of(device, c) == last)
    else {
        return 0.0;
    };
    peak_bytes_by_filtered(sched, device, unit_bytes, Some(chunk))
}

fn peak_bytes_by_filtered(
    sched: &Schedule,
    device: usize,
    unit_bytes: &dyn Fn(&WorkItem) -> f64,
    only_chunk: Option<usize>,
) -> f64 {
    let release = if sched.split_backward {
        PassKind::BackwardWeight
    } else {
        PassKind::Backward
    };
    let mut resident = 0.0f64;
    let mut peak = 0.0f64;
    for op in &sched.ops[device] {
        if let Some(c) = only_chunk {
            if op.chunk as usize != c {
                continue;
            }
        }
        // Weights are keyed by the unit (its Forward spelling), so alloc
        // and free see the same value.
        if op.kind == PassKind::Forward {
            resident += unit_bytes(op);
        } else if op.kind == release {
            resident -= unit_bytes(&op.with_kind(PassKind::Forward));
        }
        peak = peak.max(resident);
    }
    peak
}

/// Relative activation memory (units of `M_a`) of the worst device — the
/// measured counterpart of `theory::act_memory_rel`.
pub fn measured_act_rel(sched: &Schedule) -> f64 {
    worst_peak_units(sched) as f64
        / (sched.devices * sched.chunks * sched.slices) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::{act_memory_rel, Scheme};

    #[test]
    fn walks_match_table2_for_every_scheme() {
        let (p, m) = (4usize, 8usize);
        let cases: Vec<(Schedule, Scheme, usize, usize)> = vec![
            (slimpipe_sched::gpipe::generate(p, m).unwrap(), Scheme::GPipe, 1, 1),
            (slimpipe_sched::onefoneb::generate(p, m).unwrap(), Scheme::OneFOneB, 1, 1),
            (
                slimpipe_sched::interleaved::generate(p, 2, m).unwrap(),
                Scheme::Interleaved,
                1,
                2,
            ),
            (
                slimpipe_sched::terapipe::generate(p, m, 8).unwrap(),
                Scheme::TeraPipe,
                8,
                1,
            ),
            (crate::schedule::generate(p, m, 8).unwrap(), Scheme::SlimPipe, 8, 1),
            (
                crate::interleaved::generate(p, 2, m, 8).unwrap(),
                Scheme::SlimPipe,
                8,
                2,
            ),
        ];
        for (sched, scheme, n, v) in cases {
            let measured = measured_act_rel(&sched);
            let theory = act_memory_rel(scheme, p, m, n, v);
            assert!(
                (measured - theory).abs() < 1e-9,
                "{}: measured {measured}, theory {theory}",
                sched.name
            );
        }
    }

    #[test]
    fn zbv_walk_is_at_most_1f1b_level() {
        let (p, m) = (4usize, 8usize);
        let zbv =
            slimpipe_sched::zbv::generate_zbv(p, m, slimpipe_sched::zbv::ZbCosts::default())
                .unwrap();
        assert!(measured_act_rel(&zbv) <= 1.0 + 1e-9);
        let vhalf = slimpipe_sched::zbv::generate_vhalf(
            p,
            m,
            slimpipe_sched::zbv::ZbCosts::default(),
        )
        .unwrap();
        assert!(measured_act_rel(&vhalf) <= 0.5 + 1.0 / p as f64 + 1e-9);
    }

    #[test]
    fn last_stage_units_sit_on_last_device_for_classic_pp() {
        let s = slimpipe_sched::onefoneb::generate(4, 8).unwrap();
        assert_eq!(peak_last_stage_units(&s, 0), 0);
        assert!(peak_last_stage_units(&s, 3) > 0);
    }

    #[test]
    fn slimpipe_first_device_peak_exceeds_last() {
        // §6.2: "The memory usage of the first device is slightly higher
        // than that of the last device. The gap is 2(p−1)·M_a/(n·v·p)."
        let (p, m, n) = (4usize, 4usize, 8usize);
        let s = crate::schedule::generate(p, m, n).unwrap();
        let first = peak_units(&s, 0);
        let last = peak_units(&s, p - 1);
        assert_eq!(first - last, 2 * (p - 1));
    }

    #[test]
    fn peak_bytes_scales_with_ma() {
        let s = crate::schedule::generate(4, 2, 8).unwrap();
        let b1 = peak_bytes(&s, 0, 32.0);
        let b2 = peak_bytes(&s, 0, 64.0);
        assert!((b2 / b1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equal_weights_reduce_to_peak_units() {
        for s in [
            crate::schedule::generate(4, 2, 8).unwrap(),
            crate::schedule::generate_var(2, &[4, 8, 2]).unwrap(),
            slimpipe_sched::onefoneb::generate(4, 8).unwrap(),
        ] {
            for d in 0..s.devices {
                let w = peak_bytes_by(&s, d, &|_| 3.0);
                assert!(
                    (w - 3.0 * peak_units(&s, d) as f64).abs() < 1e-9,
                    "{}: device {d}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn weighted_walk_sees_heavy_early_slices() {
        // Two slices, the first 3x the second: a schedule holding both in
        // flight peaks at 4 units-worth, not 2 equal units.
        let s = crate::schedule::generate(1, 1, 2).unwrap();
        let w = peak_bytes_by(&s, 0, &|op| if op.slice == 0 { 3.0 } else { 1.0 });
        assert_eq!(w, 4.0);
        // Last-stage variant agrees on a single-device schedule.
        assert_eq!(peak_last_stage_bytes_by(&s, 0, &|_| 1.0), 2.0);
    }
}
