//! Property-based tests on the kernel contracts the SlimPipe algorithms
//! rely on: GEMM algebra, online-softmax merge associativity/exactness,
//! chunked-attention equivalence under arbitrary splits, and sharded
//! cross-entropy equivalence under arbitrary shardings.

use proptest::prelude::*;
use slimpipe_tensor::attention::{
    backward_chunk, backward_chunked, d_rows, forward_chunked, forward_full, merge_partials,
    partial, with_attn_kernel, AttnKernel, HeadCfg,
};
use slimpipe_tensor::crossentropy::{
    combine_stats, forward_backward, loss_from_stats, shard_stats,
};
use slimpipe_tensor::init::{seeded_tokens, seeded_uniform};
use slimpipe_tensor::matmul::{
    matmul, matmul_fused, matmul_fused_acc, matmul_nt, matmul_tn, matmul_tn_acc, with_kernel_nr,
};
use slimpipe_tensor::{pool, rmsnorm, swiglu, Epilogue, PackedWeight, Prologue, Tensor};

/// Reference GEMM: the j-innermost textbook triple loop.
fn naive_gemm(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.at(i, kk) * b.at(kk, j);
            }
            *c.at_mut(i, j) = acc;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled GEMM ≡ naive GEMM in all three orientations for arbitrary
    /// shapes — the sampled ranges straddle every tile boundary (MR/NR = 8,
    /// MC = 64, KC = 256) and include degenerate 1×1 and prime dims; the
    /// k range pushes `m·n·k` across the small-kernel/blocked-kernel
    /// threshold so both code paths are exercised.
    #[test]
    fn tiled_gemm_equals_naive_all_orientations(
        m in 1usize..131,
        k in 1usize..600,
        n in 1usize..131,
        seed in 0u64..1000,
    ) {
        let a = seeded_uniform(m, k, seed);
        let b = seeded_uniform(k, n, seed + 1);
        let want = naive_gemm(&a, &b);
        // Tolerance scales with the dot-product length (summation order
        // differs between the blocked kernel and the reference).
        let tol = 1e-6 * (k as f32).sqrt() * 8.0;
        let got = matmul(&a, &b);
        prop_assert!(got.max_abs_diff(&want) < tol, "nn ({m},{k},{n})");
        let got_nt = matmul_nt(&a, &b.transposed());
        prop_assert!(got_nt.max_abs_diff(&want) < tol, "nt ({m},{k},{n})");
        let got_tn = matmul_tn(&a.transposed(), &b);
        prop_assert!(got_tn.max_abs_diff(&want) < tol, "tn ({m},{k},{n})");
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ via the specialised orientations.
    #[test]
    fn gemm_transpose_identity(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        let a = seeded_uniform(m, k, seed);
        let b = seeded_uniform(k, n, seed + 1);
        let ab = matmul(&a, &b);
        let bt_at = matmul(&b.transposed(), &a.transposed());
        prop_assert!(ab.transposed().max_abs_diff(&bt_at) < 1e-4);
        // nt/tn consistency with plain matmul.
        prop_assert!(matmul_nt(&a, &b.transposed()).max_abs_diff(&ab) < 1e-4);
        prop_assert!(matmul_tn(&a.transposed(), &b).max_abs_diff(&ab) < 1e-4);
    }

    /// Matmul distributes over addition: A·(B + C) = A·B + A·C.
    #[test]
    fn gemm_distributes(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let a = seeded_uniform(m, k, seed);
        let b = seeded_uniform(k, n, seed + 1);
        let c = seeded_uniform(k, n, seed + 2);
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = matmul(&a, &bc);
        let mut rhs = matmul(&a, &b);
        rhs.add_assign(&matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// Chunked attention equals monolithic attention for ANY chunk split.
    #[test]
    fn attention_split_invariance(
        chunks in 1usize..6,
        chunk_len in 1usize..6,
        heads_pow in 0u32..2,
        seed in 0u64..500,
    ) {
        let heads = 1usize << heads_pow;
        let cfg = HeadCfg::new(heads, heads, 4);
        let s = chunks * chunk_len;
        let q = seeded_uniform(s, cfg.q_width(), seed);
        let k = seeded_uniform(s, cfg.kv_width(), seed + 1);
        let v = seeded_uniform(s, cfg.kv_width(), seed + 2);
        let full = forward_full(&q, &k, &v, cfg);
        let ks: Vec<Tensor> = (0..chunks).map(|c| k.rows_slice(c * chunk_len, chunk_len)).collect();
        let vs: Vec<Tensor> = (0..chunks).map(|c| v.rows_slice(c * chunk_len, chunk_len)).collect();
        let ch: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offs: Vec<usize> = (0..chunks).map(|c| c * chunk_len).collect();
        let got = forward_chunked(&q, &ch, &offs, cfg, 0);
        prop_assert!(got.o.max_abs_diff(&full.o) < 1e-4);
    }

    /// Online-softmax merge is commutative and associative over disjoint
    /// KV ranges — the property context exchange depends on.
    #[test]
    fn merge_is_commutative_and_associative(
        lq in 1usize..6,
        lc in 1usize..5,
        seed in 0u64..500,
    ) {
        let cfg = HeadCfg::new(2, 2, 4);
        let q = seeded_uniform(lq, cfg.q_width(), seed);
        let total = 3 * lc;
        let k = seeded_uniform(total, cfg.kv_width(), seed + 1);
        let v = seeded_uniform(total, cfg.kv_width(), seed + 2);
        // Queries positioned after all keys so everything is visible.
        let qo = total;
        let parts: Vec<_> = (0..3)
            .map(|c| partial(&q, &k.rows_slice(c * lc, lc), &v.rows_slice(c * lc, lc), cfg, qo, c * lc))
            .collect();
        let ab_c = merge_partials(&merge_partials(&parts[0], &parts[1], cfg), &parts[2], cfg);
        let a_bc = merge_partials(&parts[0], &merge_partials(&parts[1], &parts[2], cfg), cfg);
        let ba_c = merge_partials(&merge_partials(&parts[1], &parts[0], cfg), &parts[2], cfg);
        prop_assert!(ab_c.o.max_abs_diff(&a_bc.o) < 1e-4);
        prop_assert!(ab_c.o.max_abs_diff(&ba_c.o) < 1e-4);
        // And the 3-way merge equals the monolithic partial.
        let mono = partial(&q, &k, &v, cfg, qo, 0);
        prop_assert!(ab_c.o.max_abs_diff(&mono.o) < 1e-4);
    }

    /// dQ/dK/dV from any chunking sum to the monolithic gradients.
    #[test]
    fn attention_backward_split_invariance(
        chunks in 2usize..5,
        chunk_len in 1usize..4,
        seed in 0u64..300,
    ) {
        let cfg = HeadCfg::new(2, 1, 4);
        let s = chunks * chunk_len;
        let q = seeded_uniform(s, cfg.q_width(), seed);
        let k = seeded_uniform(s, cfg.kv_width(), seed + 1);
        let v = seeded_uniform(s, cfg.kv_width(), seed + 2);
        let d_o = seeded_uniform(s, cfg.q_width(), seed + 3);
        let full = forward_full(&q, &k, &v, cfg);
        let (dq_ref, dkv_ref) =
            backward_chunked(&q, &[(&k, &v)], &[0], &d_o, &full.o, &full.lse, cfg, 0);
        let ks: Vec<Tensor> = (0..chunks).map(|c| k.rows_slice(c * chunk_len, chunk_len)).collect();
        let vs: Vec<Tensor> = (0..chunks).map(|c| v.rows_slice(c * chunk_len, chunk_len)).collect();
        let ch: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offs: Vec<usize> = (0..chunks).map(|c| c * chunk_len).collect();
        let fwd = forward_chunked(&q, &ch, &offs, cfg, 0);
        let (dq, dkv) = backward_chunked(&q, &ch, &offs, &d_o, &fwd.o, &fwd.lse, cfg, 0);
        prop_assert!(dq.max_abs_diff(&dq_ref) < 1e-3);
        let mut dk_cat = Tensor::zeros(s, cfg.kv_width());
        for (c, (dk, _)) in dkv.iter().enumerate() {
            dk_cat.set_rows(c * chunk_len, dk);
        }
        prop_assert!(dk_cat.max_abs_diff(&dkv_ref[0].0) < 1e-3);
    }

    /// Fused prologue/epilogue GEMMs ≡ the separate-pass composition,
    /// **bit-for-bit**, for arbitrary shapes, across worker-pool widths
    /// and both micro-kernel widths — the invariant the fused layer hot
    /// loop rests on. Covers: RMSNorm prologue (row and transposed
    /// orientations), SwiGLU prologue, residual-add epilogue, and the
    /// gradient-accumulation entry (`C += AᵀB`).
    #[test]
    fn fused_gemm_equals_separate_passes_bitwise(
        m in 1usize..70,
        k in 1usize..96,
        n in 1usize..70,
        seed in 0u64..500,
        nr_sel in 0usize..2,
        threads_sel in 0usize..2,
    ) {
        let nr = [8usize, 16][nr_sel];
        let threads = [1usize, 4][threads_sel];
        with_kernel_nr(nr, || rayon::with_num_threads(threads, || {
            let x = seeded_uniform(m, k, seed);
            let w = seeded_uniform(k, n, seed + 1);
            let gain: Vec<f32> = (0..k).map(|i| 0.8 + 0.01 * i as f32).collect();
            let pw = PackedWeight::new(w.clone());

            // RMSNorm prologue ≡ materialised rmsnorm + plain matmul.
            let inv = rmsnorm::inv_rms(&x);
            let fused = matmul_fused(
                &x,
                pw.nn(),
                Prologue::NormRows { inv: &inv, gain: &gain },
                Epilogue::None,
            );
            let normed = rmsnorm::forward(&x, &gain);
            let unfused = matmul(&normed, &w);
            assert_eq!(fused, unfused, "norm prologue ({m},{k},{n}) nr={nr} t={threads}");
            fused.recycle();

            // SwiGLU prologue + residual epilogue ≡ swiglu + matmul + add.
            let gate = seeded_uniform(m, k, seed + 2);
            let up = seeded_uniform(m, k, seed + 3);
            let resid = seeded_uniform(m, n, seed + 4);
            let fused = matmul_fused(
                &gate,
                pw.nn(),
                Prologue::SwigluRows { up: &up },
                Epilogue::Add(&resid),
            );
            let act = swiglu::forward(&gate, &up);
            let mut unfused = matmul(&act, &w);
            act.recycle();
            unfused.add_assign(&resid);
            assert_eq!(fused, unfused, "swiglu+add ({m},{k},{n}) nr={nr} t={threads}");
            fused.recycle();

            // Transposed-norm prologue on the accumulate entry ≡
            // rmsnorm + matmul_tn + add_assign — the dW shape: A is the
            // (tokens, features) activation whose transpose feeds the
            // GEMM, so `inv` rides the k index and `gain` the output row.
            let dy = seeded_uniform(m, n, seed + 5);
            let mut g_fused = seeded_uniform(k, n, seed + 6);
            let mut g_unfused = g_fused.clone();
            matmul_tn_acc(
                &mut g_fused,
                &x,
                &dy,
                Prologue::NormCols { inv: &inv, gain: &gain },
                Prologue::None,
            );
            g_unfused.add_assign(&matmul_tn(&normed, &dy));
            assert_eq!(g_fused, g_unfused, "tn_acc norm ({m},{k},{n}) nr={nr} t={threads}");

            normed.recycle();
            pool::recycle(inv);
        }));
    }

    /// Fused SwiGLU-backward prologues ≡ the separate-pass composition,
    /// bit for bit, across NR widths and thread counts. `swiglu::backward`
    /// is finite-difference anchored in its own unit tests, so bitwise
    /// equality here transitively anchors the fused path: the
    /// `DSwigluGateRows`/`DSwigluUpRows` maps reproduce its exact
    /// elementwise expressions, hence identical packs, hence identical
    /// GEMM bits — with no `d_gate`/`d_up` tensor ever materialised.
    #[test]
    fn fused_swiglu_backward_equals_separate_passes_bitwise(
        m in 1usize..70,
        f in 1usize..96,
        n in 1usize..70,
        seed in 0u64..500,
        nr_sel in 0usize..2,
        threads_sel in 0usize..2,
    ) {
        let nr = [8usize, 16][nr_sel];
        let threads = [1usize, 4][threads_sel];
        with_kernel_nr(nr, || rayon::with_num_threads(threads, || {
            let gate = seeded_uniform(m, f, seed);
            let up = seeded_uniform(m, f, seed + 1);
            let d_act = seeded_uniform(m, f, seed + 2);
            let (d_gate, d_up) = swiglu::backward(&gate, &up, &d_act);
            let pro_dg = Prologue::DSwigluGateRows { gate: &gate, up: &up };
            let pro_du = Prologue::DSwigluUpRows { gate: &gate };

            // dX side (A-operand maps on the fused/accumulate entries):
            // d_normed = d_gate·Wᵍᵀ + d_up·Wᵘᵀ without the intermediates.
            let wt = seeded_uniform(f, n, seed + 3);
            let pw = PackedWeight::new(wt.clone());
            let mut fused = matmul_fused(&d_act, pw.nn(), pro_dg, Epilogue::None);
            let mut unfused = matmul(&d_gate, &wt);
            assert_eq!(fused, unfused, "d_gate map ({m},{f},{n}) nr={nr} t={threads}");
            matmul_fused_acc(&mut fused, &d_act, pw.nn(), pro_du);
            unfused.add_assign(&matmul(&d_up, &wt));
            assert_eq!(fused, unfused, "d_up acc ({m},{f},{n}) nr={nr} t={threads}");
            fused.recycle();
            unfused.recycle();

            // dW side (B-operand map on the transposed-accumulate entry),
            // composed with the NormCols A-map exactly like the layer:
            // g.w_gate += normed(x)ᵀ · d_gate.
            let x = seeded_uniform(m, n, seed + 4);
            let gain: Vec<f32> = (0..n).map(|i| 0.9 + 0.01 * i as f32).collect();
            let inv = rmsnorm::inv_rms(&x);
            let pro_n = Prologue::NormCols { inv: &inv, gain: &gain };
            let mut gw_fused = seeded_uniform(n, f, seed + 5);
            let mut gw_unfused = gw_fused.clone();
            matmul_tn_acc(&mut gw_fused, &x, &d_act, pro_n, pro_dg);
            let normed = rmsnorm::forward(&x, &gain);
            gw_unfused.add_assign(&matmul_tn(&normed, &d_gate));
            assert_eq!(gw_fused, gw_unfused, "dW gate ({m},{f},{n}) nr={nr} t={threads}");
            let mut gw_fused_u = seeded_uniform(n, f, seed + 6);
            let mut gw_unfused_u = gw_fused_u.clone();
            matmul_tn_acc(&mut gw_fused_u, &x, &d_act, pro_n, pro_du);
            gw_unfused_u.add_assign(&matmul_tn(&normed, &d_up));
            assert_eq!(gw_fused_u, gw_unfused_u, "dW up ({m},{f},{n}) nr={nr} t={threads}");

            normed.recycle();
            pool::recycle(inv);
            d_gate.recycle();
            d_up.recycle();
        }));
    }

    /// Gemm-regime attention ≡ scalar-regime attention within tolerance:
    /// forward output/lse and all three chunk gradients, across GQA
    /// groupings (`n_kv ∈ {1, 2, n_heads}`), causal (diagonal chunk) and
    /// fully visible (past chunk) masks, ragged query/key lengths, and
    /// 1/4-thread pools. The regimes intentionally differ in summation
    /// order, so this is the tolerance gate — bit-identity is asserted
    /// *within* each regime by the determinism suite.
    #[test]
    fn gemm_attention_matches_scalar(
        kv_sel in 0usize..3,
        lq in 1usize..80,
        lc in 1usize..80,
        offset_sel in 0usize..3,
        seed in 0u64..500,
        threads_sel in 0usize..2,
    ) {
        let n_heads = 4;
        let n_kv = [1, 2, n_heads][kv_sel]; // MQA, grouped, full MHA
        let cfg = HeadCfg::new(n_heads, n_kv, 8);
        let threads = [1usize, 4][threads_sel];
        // KV chunk at offset 0; queries on the diagonal (causal mask cuts
        // through the chunk), just past it (every key visible), or
        // strictly past at a ragged boundary.
        let q_offset = [0usize, lc, lc + 3][offset_sel];
        let q = seeded_uniform(lq, cfg.q_width(), seed);
        let k = seeded_uniform(lc, cfg.kv_width(), seed + 1);
        let v = seeded_uniform(lc, cfg.kv_width(), seed + 2);
        let d_o = seeded_uniform(lq, cfg.q_width(), seed + 3);

        let run = |kernel| with_attn_kernel(kernel, || rayon::with_num_threads(threads, || {
            let p = partial(&q, &k, &v, cfg, q_offset, 0);
            let d = d_rows(&d_o, &p.o, cfg);
            let bwd = backward_chunk(&q, &k, &v, &d_o, &p.lse, &d, cfg, q_offset, 0);
            pool::recycle(d);
            (p, bwd)
        }));
        let (p_s, (dq_s, dk_s, dv_s)) = run(AttnKernel::Scalar);
        let (p_g, (dq_g, dk_g, dv_g)) = run(AttnKernel::Gemm);
        let tol = 1e-5 * (lc as f32).sqrt() * 8.0;
        prop_assert!(p_s.o.max_abs_diff(&p_g.o) < tol, "o ({lq},{lc}) off={q_offset}");
        for (a, b) in p_s.lse.iter().zip(&p_g.lse) {
            // -inf == -inf for rows with no visible key.
            prop_assert!(a == b || (a - b).abs() < tol, "lse {a} vs {b}");
        }
        let gtol = tol * 10.0; // gradients stack two summation chains
        prop_assert!(dq_s.max_abs_diff(&dq_g) < gtol, "dq ({lq},{lc}) off={q_offset}");
        prop_assert!(dk_s.max_abs_diff(&dk_g) < gtol, "dk ({lq},{lc}) off={q_offset}");
        prop_assert!(dv_s.max_abs_diff(&dv_g) < gtol, "dv ({lq},{lc}) off={q_offset}");
    }

    /// Sharded cross-entropy equals monolithic for any divisor sharding.
    #[test]
    fn sharded_ce_matches_monolithic(
        rows in 1usize..8,
        vocab_mult in 1usize..6,
        shards in 1usize..5,
        seed in 0u64..500,
    ) {
        let vocab = vocab_mult * 12; // divisible by 1..4
        prop_assume!(vocab % shards == 0);
        let logits = seeded_uniform(rows, vocab, seed);
        let targets = seeded_tokens(rows, vocab, seed + 1);
        let (ref_loss, _) = forward_backward(&logits, &targets);
        let w = vocab / shards;
        let stats: Vec<_> = (0..shards)
            .map(|s| shard_stats(&logits.cols_slice(s * w, w), &targets, s * w))
            .collect();
        let loss = loss_from_stats(&combine_stats(&stats));
        prop_assert!((loss - ref_loss).abs() < 1e-3);
    }
}
