//! Concurrency stress for the global tensor buffer pool under the
//! persistent worker pool: many threads hammering take/recycle across
//! mixed size classes, cross-thread recycling (taken on one thread,
//! returned on another), and conservation-law assertions over the pool
//! counters.
//!
//! Single test function on purpose: the pool is process-global, so counter
//! assertions need this binary's tests to run without interleaving pool
//! users (integration-test binaries are separate processes, so other test
//! files don't interfere).

use slimpipe_tensor::pool;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const SIZES: [usize; 5] = [64, 256, 1024, 4096, 16384];

#[test]
fn pool_survives_concurrent_hammering_without_leaking() {
    pool::clear();
    pool::reset_stats();

    // ---- phase 1: worker-pool tasks hammer take/recycle in place ----
    let rounds = 2000usize;
    rayon::with_num_threads(8, || {
        use rayon::prelude::*;
        (0..rounds).into_par_iter().for_each(|i| {
            let len = SIZES[i % SIZES.len()];
            let mut v = pool::take_raw(len);
            v[0] = i as f32;
            v[len - 1] = -(i as f32);
            black_box(&v);
            pool::recycle(v);
        });
    });

    // ---- phase 1.5: the aligned path (GEMM pack panels) under the same
    // hammering — every buffer must come back 64-byte aligned, and the
    // traffic shares the hit/miss/recycle counters ----
    let aligned_rounds = 500usize;
    rayon::with_num_threads(8, || {
        use rayon::prelude::*;
        (0..aligned_rounds).into_par_iter().for_each(|i| {
            let len = SIZES[(i * 3) % SIZES.len()];
            let mut v = pool::take_aligned(len);
            assert_eq!(
                v.as_ptr() as usize % pool::BUF_ALIGN,
                0,
                "pack panel buffer must be {}-byte aligned",
                pool::BUF_ALIGN
            );
            v[0] = i as f32;
            black_box(&v);
            pool::recycle_aligned(v);
        });
    });

    // ---- phase 2: cross-thread traffic — buffers taken by pool tasks are
    // recycled by *other* OS threads (the executor's pattern: activations
    // allocated on one stage retire on another) ----
    let stash: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
    let produced = AtomicUsize::new(0);
    rayon::with_num_threads(4, || {
        use rayon::prelude::*;
        (0..400usize).into_par_iter().for_each(|i| {
            let v = pool::take_raw(SIZES[(i * 7) % SIZES.len()]);
            produced.fetch_add(1, Ordering::Relaxed);
            stash.lock().unwrap().push(v);
        });
    });
    let stashed = stash.into_inner().unwrap();
    assert_eq!(stashed.len(), produced.load(Ordering::Relaxed));
    let shared = Mutex::new(stashed);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let shared = &shared;
            s.spawn(move || loop {
                let Some(v) = shared.lock().unwrap().pop() else { break };
                pool::recycle(v);
            });
        }
    });

    // ---- conservation laws over the counters (plain + aligned) ----
    let s = pool::stats();
    let takes = (rounds + aligned_rounds + 400) as u64;
    assert_eq!(s.hits + s.misses, takes, "every take is a hit or a miss");
    // Quiescent: nothing is in flight, so every fresh allocation (miss) is
    // either banked now (a recycle that wasn't later re-taken) or was
    // discarded at a full size class.
    assert_eq!(
        s.misses,
        (s.recycles - s.hits) + s.discards,
        "allocated buffers must all be banked or discarded: {s:?}"
    );
    // 2900 takes over 5 classes stays far below the per-class cap.
    assert_eq!(s.discards, 0, "no size class should have overflowed: {s:?}");
    // Concurrency bounds the misses: at most one fresh allocation per
    // simultaneously-live buffer per class, and phase 2 keeps at most 400
    // live. Far below the take count — the pool actually pooled.
    assert!(s.hits > s.misses, "the pool must serve most takes warm: {s:?}");

    // Banked bytes are fully accounted: clear() returns every byte.
    assert!(pool::banked_mem().current() > 0, "quiescent pool holds buffers");
    pool::clear();
    assert_eq!(pool::banked_mem().current(), 0, "clear() must return all bytes");
}
