//! Bit-determinism of the parallel kernels under forced worker-pool widths.
//!
//! The worker pool distributes `(head, q-block)` forward tasks and
//! `(KV-head group, q-block)` backward tasks over however many threads the
//! caller requests; every kernel partitions its outputs into disjoint task
//! regions and reduces cross-task partials in fixed task order, so the
//! *bits* of every result must be independent of the width. These property
//! tests force widths 1, 2, 4, and 8 (`rayon::with_num_threads` — the
//! same switch `RAYON_NUM_THREADS` flips process-wide) on arbitrary GQA
//! geometries, covering `n_kv ∈ {1, 2, n_heads}` — MQA, grouped, and full
//! multi-head — over both the chunked paths (`forward_chunked` /
//! `backward_chunked`) and the exchanged path (`backward_chunk` of a
//! non-diagonal chunk at a remote `kv_offset`, exactly what context
//! exchange ships to another device).
//!
//! Sizes are chosen to clear the `PAR_ATTN_WORK` threshold with several
//! q-blocks, so the parallel decomposition is actually exercised rather
//! than the sequential fallback.

use proptest::prelude::*;
use slimpipe_tensor::attention::{
    backward_chunk, backward_chunked, d_rows, forward_chunked, with_attn_kernel, AttnKernel,
    HeadCfg,
};
use slimpipe_tensor::init::seeded_uniform;
use slimpipe_tensor::Tensor;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// One full forward + chunked backward + exchanged single-chunk backward,
/// at a given pool width. Returns every produced buffer for bit comparison.
#[allow(clippy::type_complexity)]
fn run_all_paths(
    width: usize,
    cfg: HeadCfg,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    d_o: &Tensor,
    nchunks: usize,
) -> (Tensor, Vec<f32>, Tensor, Vec<(Tensor, Tensor)>, (Tensor, Tensor, Tensor)) {
    rayon::with_num_threads(width, || {
        let s = q.rows();
        let lc = s / nchunks;
        let ks: Vec<Tensor> = (0..nchunks).map(|c| k.rows_slice(c * lc, lc)).collect();
        let vs: Vec<Tensor> = (0..nchunks).map(|c| v.rows_slice(c * lc, lc)).collect();
        let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offsets: Vec<usize> = (0..nchunks).map(|c| c * lc).collect();

        let fwd = forward_chunked(q, &chunks, &offsets, cfg, 0);
        let (dq, dkv) =
            backward_chunked(q, &chunks, &offsets, d_o, &fwd.o, &fwd.lse, cfg, 0);

        // The exchanged path: the backward of one non-diagonal chunk in
        // isolation, exactly the job context exchange ships to a remote
        // device (chunk 0 as seen by the *last* slice's queries).
        let d = d_rows(d_o, &fwd.o, cfg);
        let exchanged = backward_chunk(q, &ks[0], &vs[0], d_o, &fwd.lse, &d, cfg, 0, 0);
        (fwd.o, fwd.lse, dq, dkv, exchanged)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Forward AND backward bits are identical across pool widths 1/2/4/8
    /// for every GQA grouping, on chunked and exchanged paths alike.
    #[test]
    fn attention_is_bit_identical_across_widths(
        kv_sel in 0usize..3,
        size_sel in 0usize..2,
        nchunks in 1usize..3,
        seed in 0u64..200,
    ) {
        let n_heads = 8;
        let n_kv = [1, 2, n_heads][kv_sel]; // MQA, grouped, full MHA
        let cfg = HeadCfg::new(n_heads, n_kv, 16);
        // ≥ 2 q-blocks (Q_BLOCK = 64) and comfortably past PAR_ATTN_WORK.
        let s = [96usize, 128][size_sel];
        let q = seeded_uniform(s, cfg.q_width(), seed);
        let k = seeded_uniform(s, cfg.kv_width(), seed + 1);
        let v = seeded_uniform(s, cfg.kv_width(), seed + 2);
        let d_o = seeded_uniform(s, cfg.q_width(), seed + 3);

        // Both kernel regimes must hold the width-independence contract
        // on their own bits (the regimes differ from each other — that
        // cross-check is tolerance-gated in tests/properties.rs).
        for kernel in [AttnKernel::Scalar, AttnKernel::Gemm] {
            let (reference, others) = with_attn_kernel(kernel, || {
                let reference = run_all_paths(WIDTHS[0], cfg, &q, &k, &v, &d_o, nchunks);
                let others: Vec<_> = WIDTHS[1..]
                    .iter()
                    .map(|&w| run_all_paths(w, cfg, &q, &k, &v, &d_o, nchunks))
                    .collect();
                (reference, others)
            });
            for (got, &w) in others.iter().zip(&WIDTHS[1..]) {
                prop_assert_eq!(&got.0, &reference.0, "{:?}: forward O differs at width {}", kernel, w);
                prop_assert_eq!(&got.1, &reference.1, "{:?}: lse differs at width {}", kernel, w);
                prop_assert_eq!(&got.2, &reference.2, "{:?}: dQ differs at width {}", kernel, w);
                prop_assert_eq!(got.3.len(), reference.3.len());
                for (c, ((dk, dv), (rk, rv))) in got.3.iter().zip(&reference.3).enumerate() {
                    prop_assert_eq!(dk, rk, "{:?}: dK chunk {} differs at width {}", kernel, c, w);
                    prop_assert_eq!(dv, rv, "{:?}: dV chunk {} differs at width {}", kernel, c, w);
                }
                prop_assert_eq!(&got.4.0, &reference.4.0, "{:?}: exchanged dQ differs at width {}", kernel, w);
                prop_assert_eq!(&got.4.1, &reference.4.1, "{:?}: exchanged dK differs at width {}", kernel, w);
                prop_assert_eq!(&got.4.2, &reference.4.2, "{:?}: exchanged dV differs at width {}", kernel, w);
            }
        }
    }

    /// The tiled GEMM row-block dispatch is width-independent too — the
    /// other kernel the executor's determinism guarantee leans on.
    #[test]
    fn gemm_is_bit_identical_across_widths(
        m in 65usize..200,
        k in 64usize..300,
        n in 64usize..128,
        seed in 0u64..200,
    ) {
        use slimpipe_tensor::matmul::{matmul, matmul_nt, matmul_tn};
        let a = seeded_uniform(m, k, seed);
        let b = seeded_uniform(k, n, seed + 1);
        let bt = b.transposed();
        let at = a.transposed();
        let (c1, nt1, tn1) = rayon::with_num_threads(1, || {
            (matmul(&a, &b), matmul_nt(&a, &bt), matmul_tn(&at, &b))
        });
        for &w in &WIDTHS[1..] {
            let (cw, ntw, tnw) = rayon::with_num_threads(w, || {
                (matmul(&a, &b), matmul_nt(&a, &bt), matmul_tn(&at, &b))
            });
            prop_assert_eq!(&cw, &c1, "nn differs at width {}", w);
            prop_assert_eq!(&ntw, &nt1, "nt differs at width {}", w);
            prop_assert_eq!(&tnw, &tn1, "tn differs at width {}", w);
        }
    }
}
