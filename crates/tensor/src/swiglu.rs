//! SwiGLU with swish recomputation.
//!
//! The paper (§5): "Our SwiGLU implementation recomputes the swish function
//! instead of storing the intermediate activations." We therefore stash the
//! two projection outputs (`gate`, `up`) and recompute `silu(gate) ∘ up` in
//! the backward pass instead of storing the product.

use crate::ops::{silu, silu_grad};
use crate::tensor::Tensor;

/// Forward: `out = silu(gate) ∘ up`. `gate` and `up` are what the caller
/// stashes; the product is transient.
pub fn forward(gate: &Tensor, up: &Tensor) -> Tensor {
    assert_eq!(gate.shape(), up.shape(), "swiglu shape mismatch");
    let mut out = Tensor::uninit_pooled(gate.rows(), gate.cols());
    for ((o, g), u) in out
        .as_mut_slice()
        .iter_mut()
        .zip(gate.as_slice())
        .zip(up.as_slice())
    {
        *o = silu(*g) * *u;
    }
    out
}

/// Backward from the stashed `(gate, up)` only. Returns `(d_gate, d_up)`.
pub fn backward(gate: &Tensor, up: &Tensor, d_out: &Tensor) -> (Tensor, Tensor) {
    assert_eq!(gate.shape(), d_out.shape(), "swiglu backward shape mismatch");
    let mut dg = Tensor::uninit_pooled(gate.rows(), gate.cols());
    let mut du = Tensor::uninit_pooled(gate.rows(), gate.cols());
    let (gs, us, ds) = (gate.as_slice(), up.as_slice(), d_out.as_slice());
    for i in 0..gs.len() {
        dg.as_mut_slice()[i] = ds[i] * us[i] * silu_grad(gs[i]);
        du.as_mut_slice()[i] = ds[i] * silu(gs[i]);
    }
    (dg, du)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_uniform;

    #[test]
    fn backward_matches_finite_difference() {
        let gate = seeded_uniform(2, 6, 31);
        let up = seeded_uniform(2, 6, 32);
        let d_out = seeded_uniform(2, 6, 33);
        let (dg, du) = backward(&gate, &up, &d_out);

        let loss = |g: &Tensor, u: &Tensor| -> f64 {
            forward(g, u)
                .as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum()
        };
        let eps = 1e-3f32;
        for idx in [0usize, 4, 11] {
            let mut gp = gate.clone();
            gp.as_mut_slice()[idx] += eps;
            let mut gm = gate.clone();
            gm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&gp, &up) - loss(&gm, &up)) / (2.0 * eps as f64);
            assert!((fd - dg.as_slice()[idx] as f64).abs() < 1e-2, "dg[{idx}]");

            let mut upp = up.clone();
            upp.as_mut_slice()[idx] += eps;
            let mut upm = up.clone();
            upm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&gate, &upp) - loss(&gate, &upm)) / (2.0 * eps as f64);
            assert!((fd - du.as_slice()[idx] as f64).abs() < 1e-2, "du[{idx}]");
        }
    }
}
