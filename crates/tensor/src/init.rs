//! Deterministic, seeded parameter/data initialisation.
//!
//! Every executor test compares a pipeline run against a single-device
//! reference, so initialisation must be bit-reproducible across partitions:
//! the same `(seed)` always yields the same matrix regardless of which
//! pipeline stage materialises it.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform values in `[-0.5, 0.5)` from a fixed seed.
pub fn seeded_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.random::<f32>() - 0.5).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Scaled initialisation `U(-1,1) / sqrt(fan_in)` — keeps activations O(1)
/// through deep stacks so gradient comparisons stay well-conditioned.
pub fn seeded_xavier(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 1.0 / (rows as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Deterministic token ids in `[0, vocab)`.
pub fn seeded_tokens(len: usize, vocab: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..vocab as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_tensor() {
        assert_eq!(seeded_uniform(4, 4, 42), seeded_uniform(4, 4, 42));
        assert_ne!(seeded_uniform(4, 4, 42), seeded_uniform(4, 4, 43));
    }

    #[test]
    fn xavier_is_scaled() {
        let t = seeded_xavier(100, 8, 7);
        let bound = 1.0 / (100f32).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn tokens_in_range() {
        let toks = seeded_tokens(256, 17, 1);
        assert!(toks.iter().all(|&t| t < 17));
        assert_eq!(toks, seeded_tokens(256, 17, 1));
    }
}
