//! Shared-mutable slice view for provably disjoint parallel writes.
//!
//! The parallel attention kernel partitions its output by `(head,
//! q-block)`: each task writes a row range of one head's column band —
//! regions that are disjoint but *interleaved* in row-major memory, so
//! `chunks_mut` cannot express the split. [`SyncSliceMut`] hands each
//! worker a raw view; callers assert disjointness at the task-partition
//! level (one task per region, regions pairwise disjoint by construction).

use std::marker::PhantomData;

/// A `&mut [T]` that can be shared across scoped threads for writes to
/// caller-guaranteed-disjoint ranges.
pub struct SyncSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// Safety: the wrapper only hands out ranges through `unsafe fn range_mut`,
// whose contract makes the caller responsible for disjointness; with
// disjoint ranges this is exactly the split borrow `chunks_mut` performs.
unsafe impl<T: Send> Send for SyncSliceMut<'_, T> {}
unsafe impl<T: Send> Sync for SyncSliceMut<'_, T> {}

impl<'a, T> SyncSliceMut<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Self {
        Self { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable view of `[start, start + len)`.
    ///
    /// # Safety
    /// No two live views returned by this method may overlap, and the
    /// underlying slice must outlive every view (guaranteed by `'a`).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "range {start}+{len} out of bounds {}",
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0u32; 64];
        let view = SyncSliceMut::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let view = &view;
                s.spawn(move || {
                    // Interleaved-but-disjoint ranges: rows of a 4x16 grid.
                    let row = unsafe { view.range_mut(t * 16, 16) };
                    for (i, x) in row.iter_mut().enumerate() {
                        *x = (t * 100 + i) as u32;
                    }
                });
            }
        });
        for t in 0..4 {
            for i in 0..16 {
                assert_eq!(data[t * 16 + i], (t * 100 + i) as u32);
            }
        }
    }
}
