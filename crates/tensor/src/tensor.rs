//! Dense row-major 2-D `f32` tensor.
//!
//! Deliberately minimal: the executor only needs `(rows, cols)` matrices.
//! Shapes are checked with assertions — an out-of-shape op is a logic bug in
//! the pipeline code, not a recoverable condition.

/// Dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor of the given shape (fresh allocation; parameters and
    /// long-lived state use this). Hot-path kernels use
    /// [`Tensor::zeros_pooled`] instead.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// All-zero tensor backed by the [`crate::pool`] buffer pool.
    pub fn zeros_pooled(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: crate::pool::take(rows * cols) }
    }

    /// Pool-backed tensor with **arbitrary contents** — for outputs every
    /// element of which the caller overwrites before reading.
    pub fn uninit_pooled(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: crate::pool::take_raw(rows * cols) }
    }

    /// Pool-backed copy of `self`.
    pub fn copy_pooled(&self) -> Self {
        let mut data = crate::pool::take_raw(self.data.len());
        data.copy_from_slice(&self.data);
        Self { rows: self.rows, cols: self.cols, data }
    }

    /// Return this tensor's backing buffer to the [`crate::pool`] so a
    /// later same-shape allocation reuses it.
    pub fn recycle(self) {
        crate::pool::recycle(self.data);
    }

    /// Build from an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the backing buffer in bytes (the unit tracked by
    /// [`crate::memtrack::MemCounter`]).
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Copy of rows `[start, start+len)` as a new tensor — used to slice a
    /// microbatch of shape `(seq, hidden)` into uniform sequence slices.
    pub fn rows_slice(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "row slice out of bounds");
        let d = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Tensor::from_vec(len, self.cols, d)
    }

    /// Copy `src` into rows `[start, start+src.rows())`.
    pub fn set_rows(&mut self, start: usize, src: &Tensor) {
        assert_eq!(self.cols, src.cols, "column mismatch");
        assert!(start + src.rows <= self.rows, "row range out of bounds");
        self.data[start * self.cols..(start + src.rows) * self.cols]
            .copy_from_slice(&src.data);
    }

    /// Copy of columns `[start, start+len)` — used for head views and
    /// vocabulary shards.
    pub fn cols_slice(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "column slice out of bounds");
        let mut out = Tensor::zeros(self.rows, len);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..start + len]);
        }
        out
    }

    /// Copy `src` into columns `[start, start+src.cols())`.
    pub fn set_cols(&mut self, start: usize, src: &Tensor) {
        assert_eq!(self.rows, src.rows, "row mismatch");
        assert!(start + src.cols <= self.cols, "column range out of bounds");
        for r in 0..self.rows {
            self.row_mut(r)[start..start + src.cols].copy_from_slice(src.row(r));
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += other`, returning `other`'s buffer to the pool — the shape
    /// of every gradient-accumulation step in the executor's hot loop.
    pub fn add_assign_recycle(&mut self, other: Tensor) {
        self.add_assign(&other);
        other.recycle();
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Set every element to `value`. Unlike `scale(0.0)`, `fill(0.0)`
    /// clears NaN/Inf contamination — use it to reset accumulators.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Sum of squared elements — cheap fingerprint for equivalence tests.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// Largest absolute elementwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "compare shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_access() {
        let mut t = Tensor::zeros(2, 3);
        *t.at_mut(1, 2) = 5.0;
        assert_eq!(t.at(1, 2), 5.0);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.bytes(), 24);
    }

    #[test]
    fn row_and_col_slicing_roundtrip() {
        let t = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let mid = t.rows_slice(1, 1);
        assert_eq!(mid.as_slice(), &[3., 4.]);
        let col1 = t.cols_slice(1, 1);
        assert_eq!(col1.as_slice(), &[2., 4., 6.]);

        let mut dst = Tensor::zeros(3, 2);
        dst.set_rows(1, &mid);
        assert_eq!(dst.at(1, 0), 3.);
        let mut dst2 = Tensor::zeros(3, 2);
        dst2.set_cols(1, &col1);
        assert_eq!(dst2.at(2, 1), 6.);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.transposed().transposed(), t);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(1, 2, vec![1., 2.]);
        let b = Tensor::from_vec(1, 2, vec![10., 20.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6., 12.]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12., 24.]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![0.0; 3]);
    }
}
