//! Token embedding lookup with scatter-add backward.

use crate::tensor::Tensor;

/// Gather rows of `table` (shape `(vocab, hidden)`) at the token ids.
pub fn forward(table: &Tensor, tokens: &[u32]) -> Tensor {
    let mut out = Tensor::uninit_pooled(tokens.len(), table.cols());
    for (i, &t) in tokens.iter().enumerate() {
        assert!((t as usize) < table.rows(), "token id out of vocabulary");
        out.row_mut(i).copy_from_slice(table.row(t as usize));
    }
    out
}

/// Scatter-add `d_out` rows into the embedding-table gradient.
pub fn backward(tokens: &[u32], d_out: &Tensor, d_table: &mut Tensor) {
    assert_eq!(tokens.len(), d_out.rows(), "token/grad row mismatch");
    assert_eq!(d_out.cols(), d_table.cols(), "grad width mismatch");
    for (i, &t) in tokens.iter().enumerate() {
        let src = d_out.row(i);
        let dst = d_table.row_mut(t as usize);
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_uniform;

    #[test]
    fn gather_then_scatter_roundtrip() {
        let table = seeded_uniform(10, 4, 1);
        let tokens = [3u32, 3, 7, 0];
        let out = forward(&table, &tokens);
        assert_eq!(out.row(0), table.row(3));
        assert_eq!(out.row(2), table.row(7));

        let d_out = seeded_uniform(4, 4, 2);
        let mut d_table = Tensor::zeros(10, 4);
        backward(&tokens, &d_out, &mut d_table);
        // Row 3 received two contributions.
        for c in 0..4 {
            let expect = d_out.at(0, c) + d_out.at(1, c);
            assert!((d_table.at(3, c) - expect).abs() < 1e-6);
        }
        // Untouched rows stay zero.
        assert_eq!(d_table.row(5), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let table = seeded_uniform(4, 2, 3);
        let _ = forward(&table, &[9]);
    }
}
