//! Memory-efficient RMSNorm.
//!
//! The paper (§5) adopts "a memory-efficient RMSNorm, which otherwise uses
//! its output to calculate gradients": only the *input* is stashed, the
//! normalised output is recomputed on demand during the backward pass. This
//! module exposes exactly that contract — `forward` returns the output,
//! `backward` takes `(input, gain, d_out)` and recomputes what it needs.

use crate::tensor::Tensor;

const EPS: f32 = 1e-6;

/// Per-row inverse RMS, computed with exactly the expression
/// [`forward`] uses — the prologue input for GEMM-fused RMSNorm
/// (`slimpipe_tensor::matmul::Prologue::NormRows`): the fused product
/// `(x · inv) · gain` is then bit-identical to the materialised forward.
/// Pool-backed; the caller recycles.
pub fn inv_rms(x: &Tensor) -> Vec<f32> {
    let mut out = crate::pool::take_raw(x.rows());
    for (r, o) in out.iter_mut().enumerate() {
        let row = x.row(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
        *o = 1.0 / (ms + EPS).sqrt();
    }
    out
}

/// `y[r, :] = x[r, :] / rms(x[r, :]) * gain`
pub fn forward(x: &Tensor, gain: &[f32]) -> Tensor {
    assert_eq!(x.cols(), gain.len(), "gain length mismatch");
    let mut y = x.copy_pooled();
    for r in 0..y.rows() {
        let row = y.row_mut(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
        let inv = 1.0 / (ms + EPS).sqrt();
        for (v, g) in row.iter_mut().zip(gain) {
            *v = *v * inv * g;
        }
    }
    y
}

/// Backward from the stashed input only. Returns `(d_input, d_gain)`.
pub fn backward(x: &Tensor, gain: &[f32], d_out: &Tensor) -> (Tensor, Vec<f32>) {
    assert_eq!(x.shape(), d_out.shape(), "rmsnorm backward shape mismatch");
    let h = x.cols() as f32;
    // Every dx element is overwritten below; dgain accumulates and must
    // start zeroed.
    let mut dx = Tensor::uninit_pooled(x.rows(), x.cols());
    let mut dgain = crate::pool::take(x.cols());
    for r in 0..x.rows() {
        let xr = x.row(r);
        let dor = d_out.row(r);
        let ms: f32 = xr.iter().map(|v| v * v).sum::<f32>() / h;
        let inv = 1.0 / (ms + EPS).sqrt();
        // d_gain += d_out * x_normalised   (recompute x_norm = x * inv)
        for c in 0..xr.len() {
            dgain[c] += dor[c] * xr[c] * inv;
        }
        // dx = inv * g∘dy  -  inv^3/h * (Σ g∘dy∘x) * x
        let dot: f32 = (0..xr.len()).map(|c| gain[c] * dor[c] * xr[c]).sum();
        let coeff = inv * inv * inv / h * dot;
        let dxr = dx.row_mut(r);
        for c in 0..xr.len() {
            dxr[c] = inv * gain[c] * dor[c] - coeff * xr[c];
        }
    }
    (dx, dgain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_uniform;

    #[test]
    fn output_rows_have_unit_rms_when_gain_is_one() {
        let x = seeded_uniform(4, 16, 11);
        let y = forward(&x, &[1.0; 16]);
        for r in 0..4 {
            let ms: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>() / 16.0;
            assert!((ms - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn inv_rms_reproduces_forward_bitwise() {
        let x = seeded_uniform(5, 16, 33);
        let gain: Vec<f32> = (0..16).map(|i| 0.9 + 0.02 * i as f32).collect();
        let y = forward(&x, &gain);
        let inv = inv_rms(&x);
        for (r, ir) in inv.iter().enumerate().take(x.rows()) {
            for (c, g) in gain.iter().enumerate() {
                let fused = (x.at(r, c) * ir) * g;
                assert_eq!(fused, y.at(r, c), "({r},{c})");
            }
        }
        crate::pool::recycle(inv);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let x = seeded_uniform(3, 8, 21);
        let gain: Vec<f32> = (0..8).map(|i| 0.8 + 0.05 * i as f32).collect();
        let d_out = seeded_uniform(3, 8, 22);
        let (dx, dgain) = backward(&x, &gain, &d_out);

        let loss = |xx: &Tensor, gg: &[f32]| -> f64 {
            let y = forward(xx, gg);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum()
        };
        let eps = 1e-3f32;
        // input grads
        for idx in [0usize, 5, 13, 23] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&xp, &gain) - loss(&xm, &gain)) / (2.0 * eps as f64);
            assert!(
                (fd - dx.as_slice()[idx] as f64).abs() < 1e-2,
                "dx[{idx}]: fd={fd} got={}",
                dx.as_slice()[idx]
            );
        }
        // gain grads
        for c in [0usize, 3, 7] {
            let mut gp = gain.clone();
            gp[c] += eps;
            let mut gm = gain.clone();
            gm[c] -= eps;
            let fd = (loss(&x, &gp) - loss(&x, &gm)) / (2.0 * eps as f64);
            assert!((fd - dgain[c] as f64).abs() < 1e-2, "dgain[{c}]");
        }
    }
}
