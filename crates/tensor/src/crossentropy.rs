//! Softmax cross-entropy, monolithic and vocabulary-sharded.
//!
//! Vocabulary parallelism (paper §4.3) computes the output-layer GEMM
//! column-wise across pipeline devices and derives the loss "from the
//! sharded logits", synchronising only scalar statistics per token. The
//! sharded path here mirrors that exactly: each shard reports a per-row
//! `(max, sumexp, target-logit)` triple; combining the triples yields the
//! global log-sum-exp, and each shard then computes its own slice of
//! `d_logits` locally. Communication is `O(rows)` scalars instead of
//! `O(rows × vocab)` logits — the paper's "drastically reduced" volume.

use crate::tensor::Tensor;

/// Monolithic reference: returns `(summed loss, d_logits)` where
/// `d_logits = softmax(logits) - onehot(target)` (unscaled; callers divide
/// by the global token count).
#[allow(clippy::needless_range_loop)] // `r` indexes logits, d, and targets in lockstep
pub fn forward_backward(logits: &Tensor, targets: &[u32]) -> (f64, Tensor) {
    assert_eq!(logits.rows(), targets.len(), "row/target mismatch");
    let mut d = logits.copy_pooled();
    let mut loss = 0.0f64;
    for r in 0..logits.rows() {
        let row = d.row_mut(r);
        let t = targets[r] as usize;
        assert!(t < row.len(), "target out of vocabulary");
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        let lse = m + sum.ln();
        loss += (lse - logits.at(r, t)) as f64;
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
        row[t] -= 1.0;
    }
    (loss, d)
}

/// Per-shard statistics for one slice of rows. `target_logit` is finite only
/// on the shard that owns the target column.
#[derive(Clone, Debug)]
pub struct ShardStats {
    pub max: Vec<f32>,
    pub sumexp: Vec<f32>,
    pub target_logit: Vec<f32>,
}

/// Globally combined statistics.
#[derive(Clone, Debug)]
pub struct GlobalStats {
    pub lse: Vec<f32>,
    pub target_logit: Vec<f32>,
}

/// Pass 1 on one vocabulary shard: local max / sum-exp / target pick-up.
#[allow(clippy::needless_range_loop)] // `r` indexes the shard and targets in lockstep
pub fn shard_stats(logits_shard: &Tensor, targets: &[u32], vocab_offset: usize) -> ShardStats {
    assert_eq!(logits_shard.rows(), targets.len(), "row/target mismatch");
    let w = logits_shard.cols();
    let mut max = Vec::with_capacity(targets.len());
    let mut sumexp = Vec::with_capacity(targets.len());
    let mut target_logit = Vec::with_capacity(targets.len());
    for r in 0..logits_shard.rows() {
        let row = logits_shard.row(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let s: f32 = row.iter().map(|v| (v - m).exp()).sum();
        max.push(m);
        sumexp.push(s);
        let t = targets[r] as usize;
        target_logit.push(if t >= vocab_offset && t < vocab_offset + w {
            row[t - vocab_offset]
        } else {
            f32::NEG_INFINITY
        });
    }
    ShardStats { max, sumexp, target_logit }
}

/// Combine per-shard statistics (the scalar all-reduce of §4.3).
#[allow(clippy::needless_range_loop)] // `r` indexes every shard vector in lockstep
pub fn combine_stats(stats: &[ShardStats]) -> GlobalStats {
    assert!(!stats.is_empty(), "need at least one shard");
    let rows = stats[0].max.len();
    let mut lse = Vec::with_capacity(rows);
    let mut target_logit = vec![f32::NEG_INFINITY; rows];
    for r in 0..rows {
        let m = stats.iter().map(|s| s.max[r]).fold(f32::NEG_INFINITY, f32::max);
        let z: f32 = stats.iter().map(|s| s.sumexp[r] * (s.max[r] - m).exp()).sum();
        lse.push(m + z.ln());
        for s in stats {
            if s.target_logit[r] > target_logit[r] {
                target_logit[r] = s.target_logit[r];
            }
        }
    }
    GlobalStats { lse, target_logit }
}

/// Summed loss from the combined statistics.
pub fn loss_from_stats(g: &GlobalStats) -> f64 {
    g.lse
        .iter()
        .zip(&g.target_logit)
        .map(|(l, t)| (*l - *t) as f64)
        .sum()
}

/// Pass 2 on one shard: local slice of `d_logits` from the global lse.
pub fn shard_backward(
    logits_shard: &Tensor,
    targets: &[u32],
    vocab_offset: usize,
    lse: &[f32],
) -> Tensor {
    let w = logits_shard.cols();
    let mut d = logits_shard.copy_pooled();
    for r in 0..d.rows() {
        let l = lse[r];
        let row = d.row_mut(r);
        for v in row.iter_mut() {
            *v = (*v - l).exp();
        }
        let t = targets[r] as usize;
        if t >= vocab_offset && t < vocab_offset + w {
            row[t - vocab_offset] -= 1.0;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{seeded_tokens, seeded_uniform};

    #[test]
    fn loss_of_perfect_prediction_is_small() {
        // Huge logit on the target → near-zero loss.
        let mut logits = Tensor::zeros(2, 4);
        *logits.at_mut(0, 1) = 30.0;
        *logits.at_mut(1, 3) = 30.0;
        let (loss, _) = forward_backward(&logits, &[1, 3]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn d_logits_rows_sum_to_zero() {
        let logits = seeded_uniform(5, 11, 1);
        let targets = seeded_tokens(5, 11, 2);
        let (_, d) = forward_backward(&logits, &targets);
        for r in 0..5 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = seeded_uniform(3, 7, 3);
        let targets = seeded_tokens(3, 7, 4);
        let (_, d) = forward_backward(&logits, &targets);
        let eps = 1e-2f32;
        for idx in [0usize, 8, 20] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = forward_backward(&lp, &targets).0;
            let fm = forward_backward(&lm, &targets).0;
            let fd = (fp - fm) / (2.0 * eps as f64);
            assert!((fd - d.as_slice()[idx] as f64).abs() < 1e-3, "idx={idx}");
        }
    }

    #[test]
    fn sharded_equals_monolithic() {
        let rows = 6;
        let vocab = 12;
        let logits = seeded_uniform(rows, vocab, 5);
        let targets = seeded_tokens(rows, vocab, 6);
        let (ref_loss, ref_d) = forward_backward(&logits, &targets);

        for &shards in &[2usize, 3, 4] {
            let w = vocab / shards;
            let stats: Vec<ShardStats> = (0..shards)
                .map(|s| shard_stats(&logits.cols_slice(s * w, w), &targets, s * w))
                .collect();
            let g = combine_stats(&stats);
            let loss = loss_from_stats(&g);
            assert!((loss - ref_loss).abs() < 1e-4, "shards={shards}");

            let mut d_cat = Tensor::zeros(rows, vocab);
            for s in 0..shards {
                let ds =
                    shard_backward(&logits.cols_slice(s * w, w), &targets, s * w, &g.lse);
                d_cat.set_cols(s * w, &ds);
            }
            assert!(d_cat.max_abs_diff(&ref_d) < 1e-5, "shards={shards}");
        }
    }

    #[test]
    fn scalar_sync_volume_is_rows_not_rows_times_vocab() {
        // The whole point of §4.3: a shard's synchronised state is 3 scalars
        // per row regardless of vocabulary width.
        let logits = seeded_uniform(4, 1024, 7);
        let targets = seeded_tokens(4, 1024, 8);
        let s = shard_stats(&logits.cols_slice(0, 512), &targets, 0);
        assert_eq!(s.max.len() + s.sumexp.len() + s.target_logit.len(), 12);
    }
}
