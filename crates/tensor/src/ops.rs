//! Small elementwise / rowwise helpers shared by the layer kernels.

use crate::tensor::Tensor;

/// SiLU (swish): `x * sigmoid(x)`.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Derivative of SiLU w.r.t. its input.
#[inline]
pub fn silu_grad(x: f32) -> f32 {
    let s = 1.0 / (1.0 + (-x).exp());
    s * (1.0 + x * (1.0 - s))
}

/// Rowwise in-place softmax (numerically stable). Returns per-row
/// log-sum-exp values, which flash-style backward passes need.
pub fn softmax_rows(t: &mut Tensor) -> Vec<f32> {
    let cols = t.cols();
    let mut lses = Vec::with_capacity(t.rows());
    for r in 0..t.rows() {
        let row = t.row_mut(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
        lses.push(m + sum.ln());
        let _ = cols;
    }
    lses
}

/// `out[r] = Σ_c a[r,c] * b[r,c]` — the `D = rowsum(dO ∘ O)` term of the
/// flash-attention backward.
pub fn rowwise_dot(a: &Tensor, b: &Tensor) -> Vec<f32> {
    assert_eq!(a.shape(), b.shape(), "rowwise_dot shape mismatch");
    (0..a.rows())
        .map(|r| a.row(r).iter().zip(b.row(r)).map(|(x, y)| x * y).sum())
        .collect()
}

/// Elementwise sum of two tensors into a pooled tensor.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.copy_pooled();
    out.add_assign(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_matches_finite_difference() {
        for &x in &[-3.0f32, -0.5, 0.0, 0.7, 2.5] {
            let eps = 1e-3;
            let fd = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            assert!((fd - silu_grad(x)).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn softmax_rows_sum_to_one_and_lse_consistent() {
        let mut t = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let orig = t.clone();
        let lse = softmax_rows(&mut t);
        for r in 0..2 {
            let s: f32 = t.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            // p_ij == exp(x_ij - lse_i)
            for c in 0..3 {
                let expect = (orig.at(r, c) - lse[r]).exp();
                assert!((t.at(r, c) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn rowwise_dot_simple() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 2, vec![5., 6., 7., 8.]);
        assert_eq!(rowwise_dot(&a, &b), vec![17., 53.]);
    }
}
