//! CPU tensor substrate for the SlimPipe reproduction.
//!
//! The paper's kernels run on NVIDIA Hopper GPUs through cuDNN SDPA /
//! Flash-Attention. This crate provides the same *algorithmic contracts* on
//! CPU f32 so that the real pipeline executor (`slimpipe-exec`) can train an
//! actual transformer across threads:
//!
//! * rayon-parallel GEMM in the three orientations backward passes need
//!   (`C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`),
//! * chunked causal attention with **online softmax** over KV chunks
//!   (forward) and a flash-style backward that recomputes probabilities from
//!   the saved log-sum-exp — the property SlimPipe's attention context
//!   exchange relies on (§4.2 of the paper: partial attention outputs merged
//!   "via the online softmax method"),
//! * memory-efficient RMSNorm (gradients from the input, not the output) and
//!   SwiGLU with swish recomputation, mirroring the paper's §5 activation
//!   savings,
//! * softmax cross-entropy, including the vocabulary-sharded two-pass variant
//!   used by vocabulary parallelism (§4.3),
//! * byte-exact activation accounting (`MemCounter`) standing in for
//!   `torch.cuda.max_memory_allocated`.

pub mod attention;
pub mod crossentropy;
pub mod embedding;
pub mod init;
pub mod matmul;
pub mod memtrack;
pub mod ops;
pub mod pool;
pub mod rmsnorm;
pub mod shared;
pub mod swiglu;
pub mod tensor;

pub use attention::{attn_kernel, merge_partials, set_attn_kernel, with_attn_kernel, AttnKernel,
    AttnPartial, FlashStats};
pub use matmul::{Epilogue, PackedMat, PackedWeight, Prologue};
pub use memtrack::MemCounter;
pub use pool::PoolStats;
pub use tensor::Tensor;
