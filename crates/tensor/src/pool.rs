//! Global tensor buffer pool: size-keyed free lists of `Vec<f32>` backing
//! buffers, so the steady-state training loop performs zero kernel-path
//! heap allocations after warm-up.
//!
//! The paper's §5 observation — slice-sized KV chunks are "precisely reused
//! between two adjacent microbatches" — generalises to every activation and
//! gradient tensor the executor touches: a pipeline iteration is a fixed
//! sequence of fixed-shape ops, so after one warm-up iteration every buffer
//! a kernel needs is already banked. Kernels `take` their outputs here and
//! the executor `recycle`s every tensor it consumes; the hit/miss counters
//! make the "allocation-free after warm-up" claim *testable* (see
//! `crates/exec/tests/pool_steady_state.rs`).
//!
//! The pool is process-global and thread-safe, because activations
//! allocated on one pipeline stage's thread retire on another (forward
//! activations ship downstream, gradients ship upstream). The free lists
//! are **sharded by size-class**: a buffer length hashes to one of
//! [`POOL_SHARDS`] independently locked maps, so deep pipelines and ragged
//! runs — whose stages hit many distinct size classes concurrently — don't
//! serialise on a single mutex (each lock is held for a pop/push, never
//! while zeroing or computing). Parallel kernel *workers* never touch the
//! pool: kernels take scratch on the calling thread and hand disjoint
//! views to workers, which keeps the counters deterministic for
//! single-threaded runs.
//!
//! Memtrack integration: a [`MemCounter`] meters the bytes *banked* in the
//! free lists (alloc on recycle, free on hit), so tests and benches can
//! watch the pool's resident footprint and its high-water mark exactly
//! like any other tracked memory.

use crate::memtrack::MemCounter;
use std::collections::HashMap;
use slimpipe_obs::counters as obs;
use std::sync::{Mutex, OnceLock};

/// Alignment of [`AlignedVec`] buffers: one cache line, which is also the
/// widest SIMD vector (AVX-512) — pack panels start on a clean boundary.
pub const BUF_ALIGN: usize = 64;

/// A heap buffer of `f32` whose base address is [`BUF_ALIGN`]-byte aligned.
///
/// `Vec<f32>` only guarantees 4-byte alignment, and a `Vec` constructed
/// from an over-aligned allocation would be UB to drop (the deallocation
/// layout must match), so aligned buffers get their own owning type. The
/// GEMM pack panels live in these: the micro-kernel streams them with full
/// cache-line loads and no split-line penalty. Dropping an `AlignedVec`
/// frees the memory; hot-path users return buffers via
/// [`recycle_aligned`] instead so steady-state packs stay allocation-free.
pub struct AlignedVec {
    ptr: std::ptr::NonNull<f32>,
    len: usize,
}

// Safety: the buffer is uniquely owned heap memory; f32 is Send + Sync.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    fn layout(len: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(len * 4, BUF_ALIGN).expect("aligned layout")
    }

    /// Freshly allocated, zero-filled buffer of `len` elements.
    pub fn new(len: usize) -> Self {
        if len == 0 {
            return Self { ptr: std::ptr::NonNull::dangling(), len: 0 };
        }
        // Safety: len > 0 so the layout is non-zero-sized.
        let raw = unsafe { std::alloc::alloc_zeroed(Self::layout(len)) } as *mut f32;
        let ptr = std::ptr::NonNull::new(raw)
            .unwrap_or_else(|| std::alloc::handle_alloc_error(Self::layout(len)));
        Self { ptr, len }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The base address is always [`BUF_ALIGN`]-byte aligned (asserted in
    /// `tests/pool_stress.rs`).
    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.ptr.as_ptr()
    }
}

impl std::ops::Deref for AlignedVec {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        // Safety: ptr/len describe a live allocation we own (or a dangling
        // pointer with len 0, which is a valid empty slice).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl std::ops::DerefMut for AlignedVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len > 0 {
            // Safety: allocated with exactly this layout in `new`.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) }
        }
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={})", self.len)
    }
}

/// Free buffers kept per exact size before further recycles are dropped.
const MAX_BUFFERS_PER_SIZE: usize = 256;

/// Independently locked free-list shards; a size class lives entirely in
/// one shard, picked by hashing the buffer length.
const POOL_SHARDS: usize = 16;

/// One free-list shard: size class → stack of returned buffers.
type Shard = Mutex<HashMap<usize, Vec<Vec<f32>>>>;

/// One aligned-free-list shard (same sharding scheme, [`AlignedVec`]s).
type AlignedShard = Mutex<HashMap<usize, Vec<AlignedVec>>>;

static FREE: OnceLock<Vec<Shard>> = OnceLock::new();
static ALIGNED_FREE: OnceLock<Vec<AlignedShard>> = OnceLock::new();
static BANKED: OnceLock<MemCounter> = OnceLock::new();
// Hit/miss/recycle/discard accounting lives in the unified observability
// registry (`slimpipe_obs::counters::POOL_*`); `stats`/`reset_stats` below
// are thin shims over it so existing callers keep working.

fn shards() -> &'static [Shard] {
    FREE.get_or_init(|| (0..POOL_SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
}

fn aligned_shards() -> &'static [AlignedShard] {
    ALIGNED_FREE.get_or_init(|| (0..POOL_SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
}

/// Shard index owning size class `len` (Fibonacci hash — adjacent tensor
/// sizes land on different shards). Keeps 16 well-mixed top bits before
/// the modulo, so raising `POOL_SHARDS` really adds shards. The plain and
/// aligned free lists share the scheme.
fn shard_idx(len: usize) -> usize {
    let h = (len as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 48) as usize % POOL_SHARDS
}

fn shard_for(len: usize) -> &'static Shard {
    &shards()[shard_idx(len)]
}

/// Byte meter of buffers currently banked in the pool (peak tracked).
pub fn banked_mem() -> &'static MemCounter {
    BANKED.get_or_init(MemCounter::new)
}

/// Pool activity counters since process start (or [`reset_stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a free list.
    pub hits: u64,
    /// Takes that had to allocate fresh memory.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub recycles: u64,
    /// Returned buffers dropped because their size class was full.
    pub discards: u64,
}

/// Current counters.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: obs::POOL_HITS.get(),
        misses: obs::POOL_MISSES.get(),
        recycles: obs::POOL_RECYCLES.get(),
        discards: obs::POOL_DISCARDS.get(),
    }
}

/// Zero the counters (buffers stay banked).
pub fn reset_stats() {
    obs::POOL_HITS.reset();
    obs::POOL_MISSES.reset();
    obs::POOL_RECYCLES.reset();
    obs::POOL_DISCARDS.reset();
}

/// Drop every banked buffer (counters stay). Tests use this to compare a
/// cold pool against a warm one.
pub fn clear() {
    for shard in shards() {
        let mut map = shard.lock().unwrap();
        for (len, bucket) in map.drain() {
            banked_mem().free((len * bucket.len() * 4) as u64);
        }
    }
    for shard in aligned_shards() {
        let mut map = shard.lock().unwrap();
        for (len, bucket) in map.drain() {
            banked_mem().free((len * bucket.len() * 4) as u64);
        }
    }
}

fn pop(len: usize) -> Option<Vec<f32>> {
    let mut map = shard_for(len).lock().unwrap();
    let v = map.get_mut(&len)?.pop()?;
    banked_mem().free((len * 4) as u64);
    Some(v)
}

/// A buffer of exactly `len` elements with **arbitrary contents** (recycled
/// data or zeros). For outputs every element of which is overwritten.
pub fn take_raw(len: usize) -> Vec<f32> {
    if let Some(v) = pop(len) {
        obs::POOL_HITS.incr();
        debug_assert_eq!(v.len(), len);
        v
    } else {
        obs::POOL_MISSES.incr();
        vec![0.0; len]
    }
}

/// A zeroed buffer of exactly `len` elements.
pub fn take(len: usize) -> Vec<f32> {
    if let Some(mut v) = pop(len) {
        obs::POOL_HITS.incr();
        debug_assert_eq!(v.len(), len);
        v.fill(0.0);
        v
    } else {
        obs::POOL_MISSES.incr();
        vec![0.0; len]
    }
}

/// Return a buffer to the pool. Buffers of any provenance are accepted;
/// capacity slack (from callers that shrank a `Vec`) is re-extended so the
/// buffer files under its full size.
pub fn recycle(mut v: Vec<f32>) {
    if v.capacity() == 0 {
        return;
    }
    if v.len() != v.capacity() {
        v.resize(v.capacity(), 0.0);
    }
    let len = v.len();
    let mut map = shard_for(len).lock().unwrap();
    let bucket = map.entry(len).or_default();
    if bucket.len() >= MAX_BUFFERS_PER_SIZE {
        obs::POOL_DISCARDS.incr();
        return;
    }
    bucket.push(v);
    banked_mem().alloc((len * 4) as u64);
    obs::POOL_RECYCLES.incr();
}

/// A [`BUF_ALIGN`]-byte-aligned buffer of exactly `len` elements with
/// **arbitrary contents** — the allocation behind GEMM pack panels, whose
/// every element the pack step overwrites. Counted in the same
/// hit/miss/recycle stats as the plain takes, so the steady-state
/// "allocation-free" assertions cover the packed-weight path too.
pub fn take_aligned(len: usize) -> AlignedVec {
    let popped = {
        let mut map = aligned_shards()[shard_idx(len)].lock().unwrap();
        map.get_mut(&len).and_then(Vec::pop)
    };
    if let Some(v) = popped {
        banked_mem().free((len * 4) as u64);
        obs::POOL_HITS.incr();
        debug_assert_eq!(v.len(), len);
        v
    } else {
        obs::POOL_MISSES.incr();
        AlignedVec::new(len)
    }
}

/// Return an aligned buffer to the pool (the counterpart of
/// [`take_aligned`]; a plain drop would free the memory instead).
pub fn recycle_aligned(v: AlignedVec) {
    if v.is_empty() {
        return;
    }
    let len = v.len();
    let mut map = aligned_shards()[shard_idx(len)].lock().unwrap();
    let bucket = map.entry(len).or_default();
    if bucket.len() >= MAX_BUFFERS_PER_SIZE {
        obs::POOL_DISCARDS.incr();
        return;
    }
    bucket.push(v);
    banked_mem().alloc((len * 4) as u64);
    obs::POOL_RECYCLES.incr();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The pool is process-global, so tests that assert on counters must
    /// not interleave.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn take_recycle_take_hits() {
        let _g = LOCK.lock().unwrap();
        clear();
        let before = stats();
        let mut v = take(1024);
        assert_eq!(v.len(), 1024);
        v[0] = 42.0;
        recycle(v);
        let banked_now = banked_mem().current();
        assert!(banked_now >= 4096);
        let v2 = take(1024);
        assert_eq!(v2[0], 0.0, "zeroed takes scrub recycled contents");
        let after = stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(banked_mem().current(), banked_now - 4096);
        recycle(v2);
    }

    #[test]
    fn raw_take_keeps_contents_and_exact_sizes_only() {
        let _g = LOCK.lock().unwrap();
        clear();
        let mut v = take_raw(64);
        v[7] = 7.0;
        recycle(v);
        // A different size must miss; the same size must hit with contents.
        let w = take_raw(65);
        assert_eq!(w.len(), 65);
        let v2 = take_raw(64);
        assert_eq!(v2[7], 7.0, "raw takes may observe recycled garbage");
        recycle(w);
        recycle(v2);
    }

    #[test]
    fn distinct_size_classes_spread_over_shards() {
        let _g = LOCK.lock().unwrap();
        clear();
        // A spread of realistic tensor sizes must not all hash to one
        // shard, or the sharding buys nothing.
        let sizes: Vec<usize> = (1..=64).map(|i| i * 512).collect();
        let mut used = std::collections::HashSet::new();
        for &s in &sizes {
            let ptr = shard_for(s) as *const _ as usize;
            used.insert(ptr);
        }
        assert!(used.len() >= POOL_SHARDS / 2, "only {} shards used", used.len());
        // Round-trips still work across shard boundaries.
        for &s in &sizes {
            recycle(vec![0.0; s]);
        }
        for &s in &sizes {
            assert_eq!(take_raw(s).len(), s);
        }
        clear();
    }

    #[test]
    fn aligned_takes_round_trip_and_stay_aligned() {
        let _g = LOCK.lock().unwrap();
        clear();
        let before = stats();
        let mut v = take_aligned(1000);
        assert_eq!(v.len(), 1000);
        assert_eq!(v.as_ptr() as usize % BUF_ALIGN, 0, "fresh buffer misaligned");
        v[3] = 3.0;
        recycle_aligned(v);
        let v2 = take_aligned(1000);
        assert_eq!(v2.as_ptr() as usize % BUF_ALIGN, 0, "recycled buffer misaligned");
        assert_eq!(v2[3], 3.0, "aligned takes are raw — contents survive");
        let after = stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        // Plain and aligned lists are distinct: a same-size plain take
        // must not be served the aligned buffer (or vice versa).
        recycle_aligned(v2);
        let plain = take_raw(1000);
        assert_eq!(stats().misses - before.misses, 2, "plain take must miss");
        recycle(plain);
        clear();
        assert_eq!(banked_mem().current(), 0, "clear drains aligned lists too");
    }

    #[test]
    fn clear_returns_banked_bytes() {
        let _g = LOCK.lock().unwrap();
        clear();
        recycle(vec![0.0; 100]);
        assert!(banked_mem().current() >= 400);
        clear();
        assert_eq!(banked_mem().current(), 0);
    }
}
