//! Global tensor buffer pool: size-keyed free lists of `Vec<f32>` backing
//! buffers, so the steady-state training loop performs zero kernel-path
//! heap allocations after warm-up.
//!
//! The paper's §5 observation — slice-sized KV chunks are "precisely reused
//! between two adjacent microbatches" — generalises to every activation and
//! gradient tensor the executor touches: a pipeline iteration is a fixed
//! sequence of fixed-shape ops, so after one warm-up iteration every buffer
//! a kernel needs is already banked. Kernels `take` their outputs here and
//! the executor `recycle`s every tensor it consumes; the hit/miss counters
//! make the "allocation-free after warm-up" claim *testable* (see
//! `crates/exec/tests/pool_steady_state.rs`).
//!
//! The pool is process-global and thread-safe, because activations
//! allocated on one pipeline stage's thread retire on another (forward
//! activations ship downstream, gradients ship upstream). The free lists
//! are **sharded by size-class**: a buffer length hashes to one of
//! [`POOL_SHARDS`] independently locked maps, so deep pipelines and ragged
//! runs — whose stages hit many distinct size classes concurrently — don't
//! serialise on a single mutex (each lock is held for a pop/push, never
//! while zeroing or computing). Parallel kernel *workers* never touch the
//! pool: kernels take scratch on the calling thread and hand disjoint
//! views to workers, which keeps the counters deterministic for
//! single-threaded runs.
//!
//! Memtrack integration: a [`MemCounter`] meters the bytes *banked* in the
//! free lists (alloc on recycle, free on hit), so tests and benches can
//! watch the pool's resident footprint and its high-water mark exactly
//! like any other tracked memory.

use crate::memtrack::MemCounter;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Free buffers kept per exact size before further recycles are dropped.
const MAX_BUFFERS_PER_SIZE: usize = 256;

/// Independently locked free-list shards; a size class lives entirely in
/// one shard, picked by hashing the buffer length.
const POOL_SHARDS: usize = 16;

/// One free-list shard: size class → stack of returned buffers.
type Shard = Mutex<HashMap<usize, Vec<Vec<f32>>>>;

static FREE: OnceLock<Vec<Shard>> = OnceLock::new();
static BANKED: OnceLock<MemCounter> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLES: AtomicU64 = AtomicU64::new(0);
static DISCARDS: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static [Shard] {
    FREE.get_or_init(|| (0..POOL_SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
}

/// Shard owning size class `len` (Fibonacci hash — adjacent tensor sizes
/// land on different shards). Keeps 16 well-mixed top bits before the
/// modulo, so raising `POOL_SHARDS` really adds shards.
fn shard_for(len: usize) -> &'static Shard {
    let h = (len as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    &shards()[(h >> 48) as usize % POOL_SHARDS]
}

/// Byte meter of buffers currently banked in the pool (peak tracked).
pub fn banked_mem() -> &'static MemCounter {
    BANKED.get_or_init(MemCounter::new)
}

/// Pool activity counters since process start (or [`reset_stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a free list.
    pub hits: u64,
    /// Takes that had to allocate fresh memory.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub recycles: u64,
    /// Returned buffers dropped because their size class was full.
    pub discards: u64,
}

/// Current counters.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycles: RECYCLES.load(Ordering::Relaxed),
        discards: DISCARDS.load(Ordering::Relaxed),
    }
}

/// Zero the counters (buffers stay banked).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLES.store(0, Ordering::Relaxed);
    DISCARDS.store(0, Ordering::Relaxed);
}

/// Drop every banked buffer (counters stay). Tests use this to compare a
/// cold pool against a warm one.
pub fn clear() {
    for shard in shards() {
        let mut map = shard.lock().unwrap();
        for (len, bucket) in map.drain() {
            banked_mem().free((len * bucket.len() * 4) as u64);
        }
    }
}

fn pop(len: usize) -> Option<Vec<f32>> {
    let mut map = shard_for(len).lock().unwrap();
    let v = map.get_mut(&len)?.pop()?;
    banked_mem().free((len * 4) as u64);
    Some(v)
}

/// A buffer of exactly `len` elements with **arbitrary contents** (recycled
/// data or zeros). For outputs every element of which is overwritten.
pub fn take_raw(len: usize) -> Vec<f32> {
    if let Some(v) = pop(len) {
        HITS.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(v.len(), len);
        v
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        vec![0.0; len]
    }
}

/// A zeroed buffer of exactly `len` elements.
pub fn take(len: usize) -> Vec<f32> {
    if let Some(mut v) = pop(len) {
        HITS.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(v.len(), len);
        v.fill(0.0);
        v
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        vec![0.0; len]
    }
}

/// Return a buffer to the pool. Buffers of any provenance are accepted;
/// capacity slack (from callers that shrank a `Vec`) is re-extended so the
/// buffer files under its full size.
pub fn recycle(mut v: Vec<f32>) {
    if v.capacity() == 0 {
        return;
    }
    if v.len() != v.capacity() {
        v.resize(v.capacity(), 0.0);
    }
    let len = v.len();
    let mut map = shard_for(len).lock().unwrap();
    let bucket = map.entry(len).or_default();
    if bucket.len() >= MAX_BUFFERS_PER_SIZE {
        DISCARDS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    bucket.push(v);
    banked_mem().alloc((len * 4) as u64);
    RECYCLES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The pool is process-global, so tests that assert on counters must
    /// not interleave.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn take_recycle_take_hits() {
        let _g = LOCK.lock().unwrap();
        clear();
        let before = stats();
        let mut v = take(1024);
        assert_eq!(v.len(), 1024);
        v[0] = 42.0;
        recycle(v);
        let banked_now = banked_mem().current();
        assert!(banked_now >= 4096);
        let v2 = take(1024);
        assert_eq!(v2[0], 0.0, "zeroed takes scrub recycled contents");
        let after = stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(banked_mem().current(), banked_now - 4096);
        recycle(v2);
    }

    #[test]
    fn raw_take_keeps_contents_and_exact_sizes_only() {
        let _g = LOCK.lock().unwrap();
        clear();
        let mut v = take_raw(64);
        v[7] = 7.0;
        recycle(v);
        // A different size must miss; the same size must hit with contents.
        let w = take_raw(65);
        assert_eq!(w.len(), 65);
        let v2 = take_raw(64);
        assert_eq!(v2[7], 7.0, "raw takes may observe recycled garbage");
        recycle(w);
        recycle(v2);
    }

    #[test]
    fn distinct_size_classes_spread_over_shards() {
        let _g = LOCK.lock().unwrap();
        clear();
        // A spread of realistic tensor sizes must not all hash to one
        // shard, or the sharding buys nothing.
        let sizes: Vec<usize> = (1..=64).map(|i| i * 512).collect();
        let mut used = std::collections::HashSet::new();
        for &s in &sizes {
            let ptr = shard_for(s) as *const _ as usize;
            used.insert(ptr);
        }
        assert!(used.len() >= POOL_SHARDS / 2, "only {} shards used", used.len());
        // Round-trips still work across shard boundaries.
        for &s in &sizes {
            recycle(vec![0.0; s]);
        }
        for &s in &sizes {
            assert_eq!(take_raw(s).len(), s);
        }
        clear();
    }

    #[test]
    fn clear_returns_banked_bytes() {
        let _g = LOCK.lock().unwrap();
        clear();
        recycle(vec![0.0; 100]);
        assert!(banked_mem().current() >= 400);
        clear();
        assert_eq!(banked_mem().current(), 0);
    }
}
