//! Global tensor buffer pool: size-keyed free lists of `Vec<f32>` backing
//! buffers, so the steady-state training loop performs zero kernel-path
//! heap allocations after warm-up.
//!
//! The paper's §5 observation — slice-sized KV chunks are "precisely reused
//! between two adjacent microbatches" — generalises to every activation and
//! gradient tensor the executor touches: a pipeline iteration is a fixed
//! sequence of fixed-shape ops, so after one warm-up iteration every buffer
//! a kernel needs is already banked. Kernels `take` their outputs here and
//! the executor `recycle`s every tensor it consumes; the hit/miss counters
//! make the "allocation-free after warm-up" claim *testable* (see
//! `crates/exec/tests/pool_steady_state.rs`).
//!
//! The pool is process-global and thread-safe (one mutex around the free
//! lists — held for a pop/push, never while zeroing or computing), because
//! activations allocated on one pipeline stage's thread retire on another
//! (forward activations ship downstream, gradients ship upstream).
//! Parallel kernel *workers* never touch the pool: kernels take scratch on
//! the calling thread and hand disjoint views to workers, which keeps the
//! counters deterministic for single-threaded runs.
//!
//! Memtrack integration: a [`MemCounter`] meters the bytes *banked* in the
//! free lists (alloc on recycle, free on hit), so tests and benches can
//! watch the pool's resident footprint and its high-water mark exactly
//! like any other tracked memory.

use crate::memtrack::MemCounter;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Free buffers kept per exact size before further recycles are dropped.
const MAX_BUFFERS_PER_SIZE: usize = 256;

static FREE: OnceLock<Mutex<HashMap<usize, Vec<Vec<f32>>>>> = OnceLock::new();
static BANKED: OnceLock<MemCounter> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLES: AtomicU64 = AtomicU64::new(0);
static DISCARDS: AtomicU64 = AtomicU64::new(0);

fn free_lists() -> &'static Mutex<HashMap<usize, Vec<Vec<f32>>>> {
    FREE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Byte meter of buffers currently banked in the pool (peak tracked).
pub fn banked_mem() -> &'static MemCounter {
    BANKED.get_or_init(MemCounter::new)
}

/// Pool activity counters since process start (or [`reset_stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a free list.
    pub hits: u64,
    /// Takes that had to allocate fresh memory.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub recycles: u64,
    /// Returned buffers dropped because their size class was full.
    pub discards: u64,
}

/// Current counters.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycles: RECYCLES.load(Ordering::Relaxed),
        discards: DISCARDS.load(Ordering::Relaxed),
    }
}

/// Zero the counters (buffers stay banked).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLES.store(0, Ordering::Relaxed);
    DISCARDS.store(0, Ordering::Relaxed);
}

/// Drop every banked buffer (counters stay). Tests use this to compare a
/// cold pool against a warm one.
pub fn clear() {
    let mut map = free_lists().lock().unwrap();
    for (len, bucket) in map.drain() {
        banked_mem().free((len * bucket.len() * 4) as u64);
    }
}

fn pop(len: usize) -> Option<Vec<f32>> {
    let mut map = free_lists().lock().unwrap();
    let v = map.get_mut(&len)?.pop()?;
    banked_mem().free((len * 4) as u64);
    Some(v)
}

/// A buffer of exactly `len` elements with **arbitrary contents** (recycled
/// data or zeros). For outputs every element of which is overwritten.
pub fn take_raw(len: usize) -> Vec<f32> {
    if let Some(v) = pop(len) {
        HITS.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(v.len(), len);
        v
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        vec![0.0; len]
    }
}

/// A zeroed buffer of exactly `len` elements.
pub fn take(len: usize) -> Vec<f32> {
    if let Some(mut v) = pop(len) {
        HITS.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(v.len(), len);
        v.fill(0.0);
        v
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        vec![0.0; len]
    }
}

/// Return a buffer to the pool. Buffers of any provenance are accepted;
/// capacity slack (from callers that shrank a `Vec`) is re-extended so the
/// buffer files under its full size.
pub fn recycle(mut v: Vec<f32>) {
    if v.capacity() == 0 {
        return;
    }
    if v.len() != v.capacity() {
        v.resize(v.capacity(), 0.0);
    }
    let len = v.len();
    let mut map = free_lists().lock().unwrap();
    let bucket = map.entry(len).or_default();
    if bucket.len() >= MAX_BUFFERS_PER_SIZE {
        DISCARDS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    bucket.push(v);
    banked_mem().alloc((len * 4) as u64);
    RECYCLES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The pool is process-global, so tests that assert on counters must
    /// not interleave.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn take_recycle_take_hits() {
        let _g = LOCK.lock().unwrap();
        clear();
        let before = stats();
        let mut v = take(1024);
        assert_eq!(v.len(), 1024);
        v[0] = 42.0;
        recycle(v);
        let banked_now = banked_mem().current();
        assert!(banked_now >= 4096);
        let v2 = take(1024);
        assert_eq!(v2[0], 0.0, "zeroed takes scrub recycled contents");
        let after = stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(banked_mem().current(), banked_now - 4096);
        recycle(v2);
    }

    #[test]
    fn raw_take_keeps_contents_and_exact_sizes_only() {
        let _g = LOCK.lock().unwrap();
        clear();
        let mut v = take_raw(64);
        v[7] = 7.0;
        recycle(v);
        // A different size must miss; the same size must hit with contents.
        let w = take_raw(65);
        assert_eq!(w.len(), 65);
        let v2 = take_raw(64);
        assert_eq!(v2[7], 7.0, "raw takes may observe recycled garbage");
        recycle(w);
        recycle(v2);
    }

    #[test]
    fn clear_returns_banked_bytes() {
        let _g = LOCK.lock().unwrap();
        clear();
        recycle(vec![0.0; 100]);
        assert!(banked_mem().current() >= 400);
        clear();
        assert_eq!(banked_mem().current(), 0);
    }
}
