//! Chunked causal attention with online softmax — the kernel contract
//! SlimPipe builds on.
//!
//! The paper computes attention "slice by slice" over a chunked KV cache
//! (§4.1.2, §5 *Chunked KV Cache*) and rebalances work by letting a remote
//! device compute attention for a `(Q, KV-chunk)` pair and merging the
//! partial output back "via the online softmax method" (§4.2.2, citing
//! Milakov & Gimelshein). That requires three properties, all provided here:
//!
//! 1. **Forward** streams over KV chunks keeping only a running
//!    `(max, sum, out)` per query row; the result is exact (not an
//!    approximation) and the saved state is one log-sum-exp scalar per
//!    query row per head ([`FlashStats`]).
//! 2. **Partial results compose**: [`partial`] over any subset of KV chunks
//!    yields an [`AttnPartial`] and [`merge_partials`] combines two partials
//!    into the partial over the union — associatively and exactly.
//! 3. **Backward is chunk-local**: given `(Q, K_chunk, V_chunk, dO, lse, D)`
//!    — with `D = rowsum(dO ∘ O)` — [`backward_chunk`] produces
//!    `(dQ_partial, dK_chunk, dV_chunk)` without any other chunk, so the
//!    backward of an exchanged chunk can also run remotely.
//!
//! Supports grouped-query attention (GQA): `n_heads` query heads share
//! `n_kv_heads` key/value heads.
//!
//! **Execution model.** The forward is a single-pass online softmax (one
//! score evaluation per `(q, k)` pair — the two-pass max/accumulate split
//! is gone) parallelized over `(head, q-block)` tasks: each task owns a
//! disjoint `(row-range × head-band)` region of the output and a disjoint
//! `lse` range, handed out through [`SyncSliceMut`]. The backward fans out
//! over `(KV-head group, q-block)` tasks, so MQA/GQA backward (`n_kv`
//! small) scales with cores exactly like the forward: a task owns its
//! q-block's rows of its group's `dQ` bands outright (disjoint — written
//! directly), while its `dK`/`dV` contributions go to **per-task partial
//! buffers** that the caller reduces *in fixed task order* after the fan-in.
//! Sequential and parallel execution run the identical task decomposition
//! and the identical reduction order, so gradients are bit-identical for
//! every thread count (locked down in `tests/determinism.rs`).
//! All outputs and scratch come from the [`crate::pool`]; workers
//! never touch the pool — scratch is taken and recycled on the calling
//! thread — so pool counters stay deterministic. Below
//! [`PAR_ATTN_WORK`] everything runs inline on the caller.

use crate::matmul::{gemm_tile, gemm_tile_scratch_len, TileView, TileWrite};
use crate::pool;
use crate::shared::SyncSliceMut;
use crate::tensor::Tensor;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per forward q-block task.
const Q_BLOCK: usize = 64;

/// Approximate multiply-add count under which attention stays sequential.
const PAR_ATTN_WORK: usize = 1 << 17;

/// Keys per score tile on the gemm path: the online-softmax merge runs
/// tile-by-tile instead of key-by-key, and one `Q_BLOCK × KV_TILE` tile
/// (64 KiB of probabilities) stays cache-resident between the score and
/// value GEMMs.
const KV_TILE: usize = 256;

// ---- attention kernel regime ----

/// Which implementation the attention entry points route through —
/// a conformance-tested regime like `SLIMPIPE_GEMM_NR`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttnKernel {
    /// Per-`(q, k)` scalar dot loops with a per-key online softmax.
    Scalar,
    /// Tiled score/value/gradient products through the blocked GEMM
    /// micro-kernel, with a per-tile online-softmax merge.
    Gemm,
}

impl AttnKernel {
    /// The tag used by `SLIMPIPE_ATTN_KERNEL` and committed profiles.
    pub fn as_str(&self) -> &'static str {
        match self {
            AttnKernel::Scalar => "scalar",
            AttnKernel::Gemm => "gemm",
        }
    }

    /// Inverse of [`AttnKernel::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(AttnKernel::Scalar),
            "gemm" => Some(AttnKernel::Gemm),
            _ => None,
        }
    }
}

/// `0` = unresolved (read `SLIMPIPE_ATTN_KERNEL` on first use).
static ATTN_KERNEL: AtomicUsize = AtomicUsize::new(0);

/// Current attention kernel regime. First use resolves the
/// `SLIMPIPE_ATTN_KERNEL` environment variable (`scalar` | `gemm`);
/// invalid values fall back to the default (`gemm` — the measured-faster
/// path on the dev host). Both regimes satisfy the same contract and each
/// is bit-deterministic across thread counts, chunk splits, and
/// `SLIMPIPE_GEMM_NR`; they differ from *each other* only by float
/// summation order (tolerance-gated in the property tests).
pub fn attn_kernel() -> AttnKernel {
    match ATTN_KERNEL.load(Ordering::Relaxed) {
        1 => AttnKernel::Scalar,
        2 => AttnKernel::Gemm,
        _ => {
            let k = std::env::var("SLIMPIPE_ATTN_KERNEL")
                .ok()
                .and_then(|v| AttnKernel::parse(&v))
                .unwrap_or(AttnKernel::Gemm);
            set_attn_kernel(k);
            k
        }
    }
}

/// Force the attention kernel regime process-wide.
pub fn set_attn_kernel(kernel: AttnKernel) {
    let code = match kernel {
        AttnKernel::Scalar => 1,
        AttnKernel::Gemm => 2,
    };
    ATTN_KERNEL.store(code, Ordering::Relaxed);
}

/// Run `f` under a forced attention kernel regime, restoring the previous
/// one even if `f` panics (mirrors `with_kernel_nr`).
pub fn with_attn_kernel<T>(kernel: AttnKernel, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            ATTN_KERNEL.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore({
        attn_kernel(); // resolve so we restore a concrete value
        ATTN_KERNEL.load(Ordering::Relaxed)
    });
    set_attn_kernel(kernel);
    f()
}

/// Task indices claimed per `fetch_add` in the attention fan-outs
/// (`ParRange::with_min_len` chunked claiming): long sequences and MQA
/// produce many small q-block tasks, and batching a couple per claim cuts
/// the atomic traffic without costing balance. Claiming order never affects
/// results — tasks own disjoint outputs and partials reduce in fixed order.
const ATTN_CLAIM_BATCH: usize = 2;

/// Batch claims only when tasks clearly outnumber the workers; small
/// regions keep single-index claiming so batching never shrinks the
/// effective width (bits are identical either way — this is purely a
/// contention knob).
fn claim_batch(n_tasks: usize) -> usize {
    if n_tasks >= 4 * rayon::current_num_threads() * ATTN_CLAIM_BATCH {
        ATTN_CLAIM_BATCH
    } else {
        1
    }
}

/// Per-(head, query-row) log-sum-exp saved by the forward pass.
/// Layout: `lse[h * rows + i]`.
#[derive(Clone, Debug)]
pub struct FlashStats {
    pub lse: Vec<f32>,
}

/// A (possibly partial) attention result: normalised output plus the
/// log-sum-exp of the score mass it covers. Two partials over disjoint KV
/// ranges merge exactly into the partial over the union.
#[derive(Clone, Debug)]
pub struct AttnPartial {
    /// `(rows, n_heads * head_dim)` output, already normalised by this
    /// partial's own softmax denominator.
    pub o: Tensor,
    /// `lse[h * rows + i]`; `-inf` where the partial saw no visible key.
    pub lse: Vec<f32>,
}

impl AttnPartial {
    /// Return both buffers to the [`crate::pool`].
    pub fn recycle(self) {
        self.o.recycle();
        pool::recycle(self.lse);
    }
}

/// Head geometry shared by every entry point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeadCfg {
    pub n_heads: usize,
    pub n_kv_heads: usize,
    pub head_dim: usize,
}

impl HeadCfg {
    pub fn new(n_heads: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        assert!(n_heads.is_multiple_of(n_kv_heads), "GQA requires n_kv_heads | n_heads");
        Self { n_heads, n_kv_heads, head_dim }
    }

    #[inline]
    pub fn q_width(&self) -> usize {
        self.n_heads * self.head_dim
    }

    #[inline]
    pub fn kv_width(&self) -> usize {
        self.n_kv_heads * self.head_dim
    }

    #[inline]
    fn kv_head_of(&self, q_head: usize) -> usize {
        q_head / (self.n_heads / self.n_kv_heads)
    }

    #[inline]
    fn scale(&self) -> f32 {
        1.0 / (self.head_dim as f32).sqrt()
    }
}

#[inline(always)]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// One forward task: head `h`, query rows `[i0, i0 + rows)`, single-pass
/// online softmax against the visible keys of one chunk.
#[allow(clippy::too_many_arguments)]
fn partial_rows(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
    h: usize,
    i0: usize,
    o_rows: &SyncSliceMut<'_, f32>,
    lse_rows: &mut [f32],
    acc: &mut [f32],
) {
    let dh = cfg.head_dim;
    let lc = k.rows();
    let scale = cfg.scale();
    let kvh = cfg.kv_head_of(h);
    let qc0 = h * dh;
    let kc0 = kvh * dh;
    let width = cfg.q_width();
    for (li, lse_out) in lse_rows.iter_mut().enumerate() {
        let i = i0 + li;
        let gi = q_offset + i;
        let visible = (gi + 1).saturating_sub(kv_offset).min(lc);
        if visible == 0 {
            *lse_out = f32::NEG_INFINITY; // o row is pre-zeroed
            continue;
        }
        let qi = &q.row(i)[qc0..qc0 + dh];
        let mut m = f32::NEG_INFINITY;
        let mut sum = 0.0f32;
        acc.fill(0.0);
        for j in 0..visible {
            let kj = &k.row(j)[kc0..kc0 + dh];
            let s = dot(qi, kj) * scale;
            if s > m {
                // Rescale the running accumulator to the new max
                // (exp(-inf) = 0 covers the first visible key).
                let corr = (m - s).exp();
                sum *= corr;
                for a in acc.iter_mut() {
                    *a *= corr;
                }
                m = s;
            }
            let w = (s - m).exp();
            sum += w;
            let vj = &v.row(j)[kc0..kc0 + dh];
            for (a, vv) in acc.iter_mut().zip(vj) {
                *a += w * vv;
            }
        }
        let inv = 1.0 / sum;
        // Safety: task regions — (row, head-band) pairs — are pairwise
        // disjoint by construction of the (head, q-block) partition.
        let orow = unsafe { o_rows.range_mut(i * width + qc0, dh) };
        for (oo, a) in orow.iter_mut().zip(acc.iter()) {
            *oo = a * inv;
        }
        *lse_out = m + sum.ln();
    }
}

/// One dense masked score tile through the blocked micro-kernel:
/// `buf[li * buf_rs + j] = scale · ⟨Q[i0+li] head h, K[t0+j]⟩` where the
/// key is causally visible, `-inf` where it is masked — *the* maskable
/// score implementation, shared by the gemm forward/backward paths and
/// [`masked_scores`]. `pack` is micro-kernel pack scratch sized by
/// [`gemm_tile_scratch_len`]`(rows, tw, head_dim)`.
#[allow(clippy::too_many_arguments)]
fn score_tile(
    q: &Tensor,
    k: &Tensor,
    cfg: HeadCfg,
    h: usize,
    q_offset: usize,
    kv_offset: usize,
    i0: usize,
    rows: usize,
    t0: usize,
    tw: usize,
    buf: &mut [f32],
    buf_rs: usize,
    pack: &mut [f32],
) {
    let dh = cfg.head_dim;
    let (qc0, kc0) = (h * dh, cfg.kv_head_of(h) * dh);
    gemm_tile(
        rows,
        tw,
        dh,
        TileView { data: &q.as_slice()[i0 * cfg.q_width() + qc0..], rs: cfg.q_width(), cs: 1 },
        TileView { data: &k.as_slice()[t0 * cfg.kv_width() + kc0..], rs: 1, cs: cfg.kv_width() },
        buf,
        buf_rs,
        TileWrite::ScaledCausal {
            scale: cfg.scale(),
            q_base: q_offset + i0,
            kv_offset: kv_offset + t0,
        },
        pack,
    );
}

/// Dense `(lq, lc)` causally-masked score matrix for one query head:
/// scaled scores where visible, `-inf` where masked. Reference/debug
/// entry point (the kernels never materialise this); pooled — recycle it.
pub fn masked_scores(
    q: &Tensor,
    k: &Tensor,
    cfg: HeadCfg,
    h: usize,
    q_offset: usize,
    kv_offset: usize,
) -> Tensor {
    let (lq, lc) = (q.rows(), k.rows());
    let mut s = Tensor::zeros_pooled(lq, lc);
    let mut pack = pool::take_raw(gemm_tile_scratch_len(lq, lc, cfg.head_dim));
    score_tile(q, k, cfg, h, q_offset, kv_offset, 0, lq, 0, lc, s.as_mut_slice(), lc, &mut pack);
    pool::recycle(pack);
    s
}

/// Attention of `q` (rows at global positions `q_offset..`) against a single
/// KV chunk whose first row sits at global position `kv_offset`. Causal
/// masking is positional: query `i` sees key `j` iff `j <= i` globally.
/// Dispatches on [`attn_kernel`]; both regimes produce the same result up
/// to float summation order, and each is individually bit-deterministic.
pub fn partial(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
) -> AttnPartial {
    assert_eq!(q.cols(), cfg.q_width(), "q width mismatch");
    assert_eq!(k.cols(), cfg.kv_width(), "k width mismatch");
    assert_eq!(v.cols(), cfg.kv_width(), "v width mismatch");
    assert_eq!(k.rows(), v.rows(), "k/v row mismatch");
    match attn_kernel() {
        AttnKernel::Scalar => partial_scalar(q, k, v, cfg, q_offset, kv_offset),
        AttnKernel::Gemm => partial_gemm(q, k, v, cfg, q_offset, kv_offset),
    }
}

/// Scalar-regime forward: per-key online softmax over `(head, q-block)`
/// tasks.
fn partial_scalar(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
) -> AttnPartial {
    let (lq, dh) = (q.rows(), cfg.head_dim);
    let lc = k.rows();
    let mut o = Tensor::zeros_pooled(lq, cfg.q_width());
    let mut lse = pool::take_raw(cfg.n_heads * lq);

    let n_qblocks = lq.div_ceil(Q_BLOCK).max(1);
    let n_tasks = cfg.n_heads * n_qblocks;
    let work = cfg.n_heads * lq * lc * dh;
    let parallel = work >= PAR_ATTN_WORK && n_tasks > 1 && rayon::current_num_threads() > 1;

    // All scratch on the calling thread; workers only receive views.
    let mut scratch = pool::take_raw(n_tasks * dh);
    {
        let o_view = SyncSliceMut::new(o.as_mut_slice());
        let scratch_view = SyncSliceMut::new(&mut scratch);
        let run_task = |t: usize, lse_range: &mut [f32]| {
            let (h, qb) = (t / n_qblocks, t % n_qblocks);
            let i0 = qb * Q_BLOCK;
            // Safety: one exclusive scratch band per task index.
            let acc = unsafe { scratch_view.range_mut(t * dh, dh) };
            partial_rows(
                q, k, v, cfg, q_offset, kv_offset, h, i0, &o_view, lse_range, acc,
            );
        };
        // lse is head-major, so a task's range `[h*lq + i0, +rows)` is
        // contiguous; hand the ranges out through a second view.
        let lse_view = SyncSliceMut::new(&mut lse);
        let task_lse = |t: usize| {
            let (h, qb) = (t / n_qblocks, t % n_qblocks);
            let i0 = qb * Q_BLOCK;
            let rows = (lq - i0).min(Q_BLOCK);
            // Safety: disjoint (head, q-block) lse ranges per task.
            unsafe { lse_view.range_mut(h * lq + i0, rows) }
        };
        if parallel {
            (0..n_tasks)
                .into_par_iter()
                .with_min_len(claim_batch(n_tasks))
                .for_each(|t| run_task(t, task_lse(t)));
        } else {
            for t in 0..n_tasks {
                run_task(t, task_lse(t));
            }
        }
    }
    pool::recycle(scratch);
    AttnPartial { o, lse }
}

/// Gemm-regime forward: the same `(head, q-block)` task partition, but each
/// task streams over [`KV_TILE`]-key score tiles computed by the blocked
/// micro-kernel ([`score_tile`]) and merges them with a per-*tile* online
/// softmax — rescale the running `(max, sum, acc)` once per tile, turn the
/// score tile into probabilities in place, then accumulate `P·V` through
/// the micro-kernel again. Bit-deterministic across thread counts for the
/// same reasons as the scalar path (disjoint task regions, fixed per-task
/// tile order) and across `SLIMPIPE_GEMM_NR` because `gemm_tile` keeps
/// per-element k-order independent of the sliver width.
fn partial_gemm(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
) -> AttnPartial {
    let (lq, dh) = (q.rows(), cfg.head_dim);
    let lc = k.rows();
    let mut o = Tensor::zeros_pooled(lq, cfg.q_width());
    let mut lse = pool::take_raw(cfg.n_heads * lq);

    let n_qblocks = lq.div_ceil(Q_BLOCK).max(1);
    let n_tasks = cfg.n_heads * n_qblocks;
    let work = cfg.n_heads * lq * lc * dh;
    let parallel = work >= PAR_ATTN_WORK && n_tasks > 1 && rayon::current_num_threads() > 1;

    // Per-task scratch: probability tile (rows × tile), unnormalised output
    // accumulator (rows × dh), running max and sum (rows each), plus
    // micro-kernel pack scratch for the larger of the two tile GEMMs. Every
    // head shares a q-block's layout, so offsets are (h * stride + prefix).
    let rows_of = |qb: usize| (lq - qb * Q_BLOCK).min(Q_BLOCK);
    let bound_of = |qb: usize| -> usize {
        (q_offset + qb * Q_BLOCK + rows_of(qb)).saturating_sub(kv_offset).min(lc)
    };
    let per = |qb: usize| -> usize {
        let (rows, bound) = (rows_of(qb), bound_of(qb));
        if bound == 0 {
            return 0;
        }
        let tw = bound.min(KV_TILE);
        let pack = gemm_tile_scratch_len(rows, tw, dh).max(gemm_tile_scratch_len(rows, dh, tw));
        rows * tw + rows * dh + 2 * rows + pack
    };
    let stride: usize = (0..n_qblocks).map(per).sum();
    let offset_of = |h: usize, qb: usize| h * stride + (0..qb).map(per).sum::<usize>();

    let mut scratch = pool::take_raw(cfg.n_heads * stride);
    {
        let o_view = SyncSliceMut::new(o.as_mut_slice());
        let scratch_view = SyncSliceMut::new(&mut scratch);
        let lse_view = SyncSliceMut::new(&mut lse);
        let run_task = |t: usize| {
            let (h, qb) = (t / n_qblocks, t % n_qblocks);
            let i0 = qb * Q_BLOCK;
            let rows = rows_of(qb);
            // Safety: disjoint (head, q-block) lse ranges per task.
            let lse_rows = unsafe { lse_view.range_mut(h * lq + i0, rows) };
            let bound = bound_of(qb);
            if bound == 0 {
                lse_rows.fill(f32::NEG_INFINITY); // o rows stay zero
                return;
            }
            // Safety: one exclusive scratch block per task index.
            let block = unsafe { scratch_view.range_mut(offset_of(h, qb), per(qb)) };
            partial_gemm_task(
                q, k, v, cfg, q_offset, kv_offset, h, i0, rows, bound, &o_view, lse_rows, block,
            );
        };
        if parallel {
            (0..n_tasks)
                .into_par_iter()
                .with_min_len(claim_batch(n_tasks))
                .for_each(run_task);
        } else {
            for t in 0..n_tasks {
                run_task(t);
            }
        }
    }
    pool::recycle(scratch);
    AttnPartial { o, lse }
}

/// One gemm-regime forward task: head `h`, query rows `[i0, i0 + rows)`,
/// tile-wise online softmax against the `bound` visible keys of one chunk.
#[allow(clippy::too_many_arguments)]
fn partial_gemm_task(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
    h: usize,
    i0: usize,
    rows: usize,
    bound: usize,
    o_view: &SyncSliceMut<'_, f32>,
    lse_rows: &mut [f32],
    block: &mut [f32],
) {
    let dh = cfg.head_dim;
    let lc = k.rows();
    let kvw = cfg.kv_width();
    let kc0 = cfg.kv_head_of(h) * dh;
    let tile = bound.min(KV_TILE);
    let (p_buf, rest) = block.split_at_mut(rows * tile);
    let (acc, rest) = rest.split_at_mut(rows * dh);
    let (mrow, rest) = rest.split_at_mut(rows);
    let (srow, pack) = rest.split_at_mut(rows);
    mrow.fill(f32::NEG_INFINITY);
    srow.fill(0.0);
    acc.fill(0.0);
    for t0 in (0..bound).step_by(tile) {
        let tw = (bound - t0).min(tile);
        score_tile(q, k, cfg, h, q_offset, kv_offset, i0, rows, t0, tw, p_buf, tile, pack);
        // Per-row tile merge: rescale the running (sum, acc) when this tile
        // raises the max (exp(-inf) = 0 covers the first visible tile),
        // then overwrite scores with exp(s - m) in place, zeroing the
        // masked tail so the value GEMM reads a dense tile.
        for li in 0..rows {
            let gvis = (q_offset + i0 + li + 1).saturating_sub(kv_offset).min(lc);
            let vis = gvis.saturating_sub(t0).min(tw);
            let row = &mut p_buf[li * tile..li * tile + tw];
            if vis == 0 {
                row.fill(0.0);
                continue;
            }
            let mut tmax = f32::NEG_INFINITY;
            for &s in &row[..vis] {
                if s > tmax {
                    tmax = s;
                }
            }
            if tmax > mrow[li] {
                let corr = (mrow[li] - tmax).exp();
                srow[li] *= corr;
                for a in &mut acc[li * dh..(li + 1) * dh] {
                    *a *= corr;
                }
                mrow[li] = tmax;
            }
            let m = mrow[li];
            for s in &mut row[..vis] {
                let w = (*s - m).exp();
                *s = w;
                srow[li] += w;
            }
            row[vis..].fill(0.0);
        }
        // acc += P · V_tile through the micro-kernel.
        gemm_tile(
            rows,
            dh,
            tw,
            TileView { data: p_buf, rs: tile, cs: 1 },
            TileView { data: &v.as_slice()[t0 * kvw + kc0..], rs: kvw, cs: 1 },
            acc,
            dh,
            TileWrite::Accumulate,
            pack,
        );
    }
    let width = cfg.q_width();
    let qc0 = h * dh;
    for (li, lse_out) in lse_rows.iter_mut().enumerate() {
        if mrow[li] == f32::NEG_INFINITY {
            *lse_out = f32::NEG_INFINITY; // o row is pre-zeroed
            continue;
        }
        let inv = 1.0 / srow[li];
        // Safety: task regions — (row, head-band) pairs — are pairwise
        // disjoint by construction of the (head, q-block) partition.
        let orow = unsafe { o_view.range_mut((i0 + li) * width + qc0, dh) };
        for (oo, a) in orow.iter_mut().zip(&acc[li * dh..(li + 1) * dh]) {
            *oo = a * inv;
        }
        *lse_out = mrow[li] + srow[li].ln();
    }
}

/// Merge two partials over disjoint KV ranges into the partial over their
/// union (exact online-softmax combination).
pub fn merge_partials(a: &AttnPartial, b: &AttnPartial, cfg: HeadCfg) -> AttnPartial {
    let mut out = AttnPartial {
        o: a.o.copy_pooled(),
        lse: {
            let mut l = pool::take_raw(a.lse.len());
            l.copy_from_slice(&a.lse);
            l
        },
    };
    merge_partials_into(&mut out, b, cfg);
    out
}

/// Fold `b` into the accumulator `a` in place — identical arithmetic to
/// [`merge_partials`], without allocating. This is what the chunk loops use
/// so a whole forward keeps exactly one accumulator.
pub fn merge_partials_into(a: &mut AttnPartial, b: &AttnPartial, cfg: HeadCfg) {
    assert_eq!(a.o.shape(), b.o.shape(), "merge shape mismatch");
    let (lq, dh) = (a.o.rows(), cfg.head_dim);
    for h in 0..cfg.n_heads {
        let c0 = h * dh;
        for i in 0..lq {
            let idx = h * lq + i;
            let (la, lb) = (a.lse[idx], b.lse[idx]);
            if lb == f32::NEG_INFINITY {
                continue; // nothing to fold in; a's entry stands
            }
            if la == f32::NEG_INFINITY {
                a.lse[idx] = lb;
                let arow = &mut a.o.row_mut(i)[c0..c0 + dh];
                arow.copy_from_slice(&b.o.row(i)[c0..c0 + dh]);
                continue;
            }
            let m = la.max(lb);
            let (wa, wb) = ((la - m).exp(), (lb - m).exp());
            let denom = wa + wb;
            a.lse[idx] = m + denom.ln();
            let (fa, fb) = (wa / denom, wb / denom);
            let arow = &mut a.o.row_mut(i)[c0..c0 + dh];
            let brow = &b.o.row(i)[c0..c0 + dh];
            for (aa, bb) in arow.iter_mut().zip(brow) {
                *aa = fa * *aa + fb * bb;
            }
        }
    }
}

/// Fold one more partial into a running accumulator, consuming (and
/// recycling) the incoming partial — the one canonical way every chunk
/// loop (local, context-exchange, ring-CP) accumulates partials.
pub fn fold_partial(acc: &mut Option<AttnPartial>, p: AttnPartial, cfg: HeadCfg) {
    match acc {
        None => *acc = Some(p),
        Some(prev) => {
            merge_partials_into(prev, &p, cfg);
            p.recycle();
        }
    }
}

/// Forward over an ordered list of KV chunks (the chunked KV cache).
/// `chunk_offsets[c]` is the global position of chunk `c`'s first row.
pub fn forward_chunked(
    q: &Tensor,
    chunks: &[(&Tensor, &Tensor)],
    chunk_offsets: &[usize],
    cfg: HeadCfg,
    q_offset: usize,
) -> AttnPartial {
    assert_eq!(chunks.len(), chunk_offsets.len(), "chunk/offset length mismatch");
    assert!(!chunks.is_empty(), "attention needs at least one KV chunk");
    let mut acc: Option<AttnPartial> = None;
    for (c, (k, v)) in chunks.iter().enumerate() {
        let p = partial(q, k, v, cfg, q_offset, chunk_offsets[c]);
        fold_partial(&mut acc, p, cfg);
    }
    acc.expect("non-empty chunks")
}

/// Convenience: full causal self-attention over one contiguous sequence.
pub fn forward_full(q: &Tensor, k: &Tensor, v: &Tensor, cfg: HeadCfg) -> AttnPartial {
    forward_chunked(q, &[(k, v)], &[0], cfg, 0)
}

/// `D[h*rows + i] = Σ_c dO[i, h*dh + c] * O[i, h*dh + c]` — precomputed once
/// per backward and shared by every chunk.
pub fn d_rows(d_o: &Tensor, o: &Tensor, cfg: HeadCfg) -> Vec<f32> {
    assert_eq!(d_o.shape(), o.shape(), "d_rows shape mismatch");
    let (lq, dh) = (o.rows(), cfg.head_dim);
    let mut d = pool::take_raw(cfg.n_heads * lq);
    for h in 0..cfg.n_heads {
        let c0 = h * dh;
        for i in 0..lq {
            d[h * lq + i] = dot(&d_o.row(i)[c0..c0 + dh], &o.row(i)[c0..c0 + dh]);
        }
    }
    d
}

/// One backward task: every query head of KV-head group `kvh`, query rows
/// `[i0, i0 + rows)`, against one chunk. The task owns its rows of the
/// group's `dQ` bands outright (written through `dq_view`); its `dK`/`dV`
/// contributions accumulate into the task-private `dk_part`/`dv_part`
/// buffers (`bound × head_dim` — the causal visible prefix of the chunk,
/// group band only), reduced later by the caller in fixed task order.
#[allow(clippy::too_many_arguments)]
fn backward_task(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    d_o: &Tensor,
    lse: &[f32],
    d: &[f32],
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
    kvh: usize,
    i0: usize,
    rows: usize,
    dq_view: &SyncSliceMut<'_, f32>,
    dk_part: &mut [f32],
    dv_part: &mut [f32],
    dqi: &mut [f32],
) {
    let (lq, dh) = (q.rows(), cfg.head_dim);
    let lc = k.rows();
    let scale = cfg.scale();
    let group = cfg.n_heads / cfg.n_kv_heads;
    let kc0 = kvh * dh;
    let q_width = cfg.q_width();
    // The reduction reads every element, so the partials must start clean
    // even when this task sees no visible key.
    dk_part.fill(0.0);
    dv_part.fill(0.0);
    for h in kvh * group..(kvh + 1) * group {
        let qc0 = h * dh;
        for i in i0..i0 + rows {
            let gi = q_offset + i;
            let visible = (gi + 1).saturating_sub(kv_offset).min(lc);
            if visible == 0 {
                continue;
            }
            let l = lse[h * lq + i];
            if l == f32::NEG_INFINITY {
                continue;
            }
            let di = d[h * lq + i];
            let qi = &q.row(i)[qc0..qc0 + dh];
            let doi = &d_o.row(i)[qc0..qc0 + dh];
            dqi.fill(0.0);
            for j in 0..visible {
                let kj = &k.row(j)[kc0..kc0 + dh];
                let s = dot(qi, kj) * scale;
                let p = (s - l).exp();
                let vj = &v.row(j)[kc0..kc0 + dh];
                // dV_j += p * dO_i
                // dP = dO_i · V_j ; dS = p * (dP - D_i)
                let dp = dot(doi, vj);
                let ds = p * (dp - di) * scale;
                let dvj = &mut dv_part[j * dh..(j + 1) * dh];
                for (dvv, dd) in dvj.iter_mut().zip(doi) {
                    *dvv += p * dd;
                }
                let dkj = &mut dk_part[j * dh..(j + 1) * dh];
                for (dkk, qq) in dkj.iter_mut().zip(qi) {
                    *dkk += ds * qq;
                }
                for (dqq, kk) in dqi.iter_mut().zip(kj) {
                    *dqq += ds * kk;
                }
            }
            // Safety: each (row i, query-head band) belongs to exactly one
            // (group, q-block) task.
            let dqrow = unsafe { dq_view.range_mut(i * q_width + qc0, dh) };
            for (a, b) in dqrow.iter_mut().zip(dqi.iter()) {
                *a += b;
            }
        }
    }
}

/// Chunk-local backward: gradients of one KV chunk plus this chunk's
/// contribution to `dQ`, from `(q, k, v, dO, lse, D)` only.
///
/// Probabilities are recomputed as `exp(score - lse)` — nothing beyond the
/// forward's per-row statistics is needed, which is what lets SlimPipe ship
/// this computation to another pipeline device during context exchange.
///
/// Parallelism: `(KV-head group, q-block)` tasks with per-task `dK`/`dV`
/// partials; the caller reduces the partials in ascending q-block order, so
/// the summation order — and therefore every output bit — is independent of
/// the thread count. With `n_kv = 1` (MQA) there are still
/// `ceil(lq / Q_BLOCK)` tasks, which is what lets the MQA backward scale
/// with cores instead of serialising on the single KV head.
#[allow(clippy::too_many_arguments)]
pub fn backward_chunk(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    d_o: &Tensor,
    lse: &[f32],
    d: &[f32],
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
) -> (Tensor, Tensor, Tensor) {
    match attn_kernel() {
        AttnKernel::Scalar => backward_chunk_scalar(q, k, v, d_o, lse, d, cfg, q_offset, kv_offset),
        AttnKernel::Gemm => backward_chunk_gemm(q, k, v, d_o, lse, d, cfg, q_offset, kv_offset),
    }
}

/// Deterministic dK/dV fan-in shared by both kernel regimes: every
/// (group, key row) sums its q-block partials in ascending q-block order —
/// the same order no matter how tasks were scheduled. Both regimes lay each
/// task block out as `[dK partial (bound × dh) | dV partial (bound × dh) |
/// regime-private tail]`, so the reducer only needs the regime's
/// `task_bound`/`offset_of` geometry.
fn reduce_dkv_partials(
    scratch: &[f32],
    dk: &mut Tensor,
    dv: &mut Tensor,
    cfg: HeadCfg,
    n_qblocks: usize,
    task_bound: impl Fn(usize) -> usize,
    offset_of: impl Fn(usize, usize) -> usize,
) {
    let dh = cfg.head_dim;
    let kv_width = cfg.kv_width();
    let (dks, dvs) = (dk.as_mut_slice(), dv.as_mut_slice());
    for kvh in 0..cfg.n_kv_heads {
        let kc0 = kvh * dh;
        for qb in 0..n_qblocks {
            let bound = task_bound(qb);
            let off = offset_of(kvh, qb);
            let (dk_part, dv_part) = scratch[off..off + 2 * bound * dh].split_at(bound * dh);
            for j in 0..bound {
                let dst = &mut dks[j * kv_width + kc0..j * kv_width + kc0 + dh];
                for (a, b) in dst.iter_mut().zip(&dk_part[j * dh..(j + 1) * dh]) {
                    *a += b;
                }
                let dst = &mut dvs[j * kv_width + kc0..j * kv_width + kc0 + dh];
                for (a, b) in dst.iter_mut().zip(&dv_part[j * dh..(j + 1) * dh]) {
                    *a += b;
                }
            }
        }
    }
}

/// Scalar-regime chunk backward: per-`(q, k)` dot loops.
#[allow(clippy::too_many_arguments)]
fn backward_chunk_scalar(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    d_o: &Tensor,
    lse: &[f32],
    d: &[f32],
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
) -> (Tensor, Tensor, Tensor) {
    let (lq, dh) = (q.rows(), cfg.head_dim);
    let lc = k.rows();
    let mut dq = Tensor::zeros_pooled(lq, cfg.q_width());
    let mut dk = Tensor::zeros_pooled(lc, cfg.kv_width());
    let mut dv = Tensor::zeros_pooled(lc, cfg.kv_width());

    let n_qblocks = lq.div_ceil(Q_BLOCK).max(1);
    let n_tasks = cfg.n_kv_heads * n_qblocks;
    let work = cfg.n_heads * lq * lc * dh;
    let parallel = work >= PAR_ATTN_WORK && n_tasks > 1 && rayon::current_num_threads() > 1;

    // Causal masking bounds every row of q-block `qb` to the keys before
    // the block's last global position, so the block's partials only need
    // `bound(qb)` rows — roughly half the zero-fill, memory, and fan-in
    // work on the diagonal chunk. The bound is pure geometry, identical at
    // every width.
    let task_bound = |qb: usize| -> usize {
        let i0 = qb * Q_BLOCK;
        let rows = (lq - i0).min(Q_BLOCK);
        (q_offset + i0 + rows).saturating_sub(kv_offset).min(lc)
    };
    let per = |qb: usize| 2 * task_bound(qb) * dh + dh;
    // Tasks of one KV-head group pack contiguously; groups share a layout,
    // so offsets are (kvh * stride + in-group prefix) — computed by a tiny
    // loop per task, keeping the kernel free of heap allocations.
    let stride: usize = (0..n_qblocks).map(per).sum();
    let offset_of = |kvh: usize, qb: usize| -> usize {
        kvh * stride + (0..qb).map(per).sum::<usize>()
    };

    // Per-task scratch: dK partial + dV partial (`bound × dh` each, the
    // task's group band only) and a dQ row accumulator — one contiguous
    // pooled block, taken and recycled on the calling thread.
    let mut scratch = pool::take_raw(cfg.n_kv_heads * stride);
    {
        let dq_view = SyncSliceMut::new(dq.as_mut_slice());
        let scratch_view = SyncSliceMut::new(&mut scratch);
        let run_task = |t: usize| {
            let (kvh, qb) = (t / n_qblocks, t % n_qblocks);
            let i0 = qb * Q_BLOCK;
            let rows = (lq - i0).min(Q_BLOCK);
            let bound = task_bound(qb);
            // Safety: one exclusive scratch block per task index.
            let block = unsafe { scratch_view.range_mut(offset_of(kvh, qb), per(qb)) };
            let (dk_part, rest) = block.split_at_mut(bound * dh);
            let (dv_part, dqi) = rest.split_at_mut(bound * dh);
            backward_task(
                q, k, v, d_o, lse, d, cfg, q_offset, kv_offset, kvh, i0, rows, &dq_view,
                dk_part, dv_part, dqi,
            );
        };
        if parallel {
            (0..n_tasks)
                .into_par_iter()
                .with_min_len(claim_batch(n_tasks))
                .for_each(run_task);
        } else {
            for t in 0..n_tasks {
                run_task(t);
            }
        }
    }
    // Rows past a task's bound were never written and are skipped; results
    // are bit-identical for every thread count (and bit-identical to the
    // sequential loop above).
    reduce_dkv_partials(&scratch, &mut dk, &mut dv, cfg, n_qblocks, task_bound, offset_of);
    pool::recycle(scratch);
    (dq, dk, dv)
}

/// Gemm-regime chunk backward: the same `(KV-head group, q-block)` task
/// partition and fixed-order partial fan-in as the scalar path, but every
/// matrix product inside a task — scores `Q·Kᵀ`, `dP = dO·Vᵀ`,
/// `dV += Pᵀ·dO`, `dK += dSᵀ·Q`, `dQ += dS·K` — runs through the blocked
/// micro-kernel over [`KV_TILE`]-key tiles. Probabilities are recomputed as
/// `exp(score − lse)` per tile (masked entries zeroed so the tile GEMMs
/// read dense data), and `dS = P ∘ (dP − D) · scale` is formed in place
/// over the dP tile.
#[allow(clippy::too_many_arguments)]
fn backward_chunk_gemm(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    d_o: &Tensor,
    lse: &[f32],
    d: &[f32],
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
) -> (Tensor, Tensor, Tensor) {
    let (lq, dh) = (q.rows(), cfg.head_dim);
    let lc = k.rows();
    let mut dq = Tensor::zeros_pooled(lq, cfg.q_width());
    let mut dk = Tensor::zeros_pooled(lc, cfg.kv_width());
    let mut dv = Tensor::zeros_pooled(lc, cfg.kv_width());

    let n_qblocks = lq.div_ceil(Q_BLOCK).max(1);
    let n_tasks = cfg.n_kv_heads * n_qblocks;
    let work = cfg.n_heads * lq * lc * dh;
    let parallel = work >= PAR_ATTN_WORK && n_tasks > 1 && rayon::current_num_threads() > 1;

    let rows_of = |qb: usize| (lq - qb * Q_BLOCK).min(Q_BLOCK);
    let task_bound = |qb: usize| -> usize {
        (q_offset + qb * Q_BLOCK + rows_of(qb)).saturating_sub(kv_offset).min(lc)
    };
    // Per-task scratch: dK/dV partials (`bound × dh` each, group band only,
    // reduced by the shared fan-in), a dQ accumulator (rows × dh), the
    // probability and dP/dS tiles (rows × tile each), and micro-kernel pack
    // scratch for the largest of the five tile GEMM shapes.
    let per = |qb: usize| -> usize {
        let bound = task_bound(qb);
        if bound == 0 {
            return 0;
        }
        let rows = rows_of(qb);
        let tw = bound.min(KV_TILE);
        let pack = gemm_tile_scratch_len(rows, tw, dh)
            .max(gemm_tile_scratch_len(tw, dh, rows))
            .max(gemm_tile_scratch_len(rows, dh, tw));
        2 * bound * dh + rows * dh + 2 * rows * tw + pack
    };
    let stride: usize = (0..n_qblocks).map(per).sum();
    let offset_of = |kvh: usize, qb: usize| kvh * stride + (0..qb).map(per).sum::<usize>();

    let mut scratch = pool::take_raw(cfg.n_kv_heads * stride);
    {
        let dq_view = SyncSliceMut::new(dq.as_mut_slice());
        let scratch_view = SyncSliceMut::new(&mut scratch);
        let run_task = |t: usize| {
            let (kvh, qb) = (t / n_qblocks, t % n_qblocks);
            let bound = task_bound(qb);
            if bound == 0 {
                return; // no visible key: nothing written, nothing reduced
            }
            // Safety: one exclusive scratch block per task index.
            let block = unsafe { scratch_view.range_mut(offset_of(kvh, qb), per(qb)) };
            backward_task_gemm(
                q,
                k,
                v,
                d_o,
                lse,
                d,
                cfg,
                q_offset,
                kv_offset,
                kvh,
                qb * Q_BLOCK,
                rows_of(qb),
                bound,
                &dq_view,
                block,
            );
        };
        if parallel {
            (0..n_tasks)
                .into_par_iter()
                .with_min_len(claim_batch(n_tasks))
                .for_each(run_task);
        } else {
            for t in 0..n_tasks {
                run_task(t);
            }
        }
    }
    // Zero-bound tasks have zero-length blocks, so the fan-in geometry
    // below only ever touches blocks whose partials were initialised.
    reduce_dkv_partials(&scratch, &mut dk, &mut dv, cfg, n_qblocks, task_bound, offset_of);
    pool::recycle(scratch);
    (dq, dk, dv)
}

/// One gemm-regime backward task: every query head of KV-head group `kvh`,
/// query rows `[i0, i0 + rows)`, against the `bound` visible keys of one
/// chunk, tile by tile.
#[allow(clippy::too_many_arguments)]
fn backward_task_gemm(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    d_o: &Tensor,
    lse: &[f32],
    d: &[f32],
    cfg: HeadCfg,
    q_offset: usize,
    kv_offset: usize,
    kvh: usize,
    i0: usize,
    rows: usize,
    bound: usize,
    dq_view: &SyncSliceMut<'_, f32>,
    block: &mut [f32],
) {
    let (lq, dh) = (q.rows(), cfg.head_dim);
    let lc = k.rows();
    let scale = cfg.scale();
    let group = cfg.n_heads / cfg.n_kv_heads;
    let kc0 = kvh * dh;
    let q_width = cfg.q_width();
    let kvw = cfg.kv_width();
    let tile = bound.min(KV_TILE);
    let (dk_part, rest) = block.split_at_mut(bound * dh);
    let (dv_part, rest) = rest.split_at_mut(bound * dh);
    let (dq_acc, rest) = rest.split_at_mut(rows * dh);
    let (p_buf, rest) = rest.split_at_mut(rows * tile);
    let (ds_buf, pack) = rest.split_at_mut(rows * tile);
    // The reduction reads every element, so the partials must start clean.
    dk_part.fill(0.0);
    dv_part.fill(0.0);
    for h in kvh * group..(kvh + 1) * group {
        let qc0 = h * dh;
        dq_acc.fill(0.0);
        for t0 in (0..bound).step_by(tile) {
            let tw = (bound - t0).min(tile);
            score_tile(q, k, cfg, h, q_offset, kv_offset, i0, rows, t0, tw, p_buf, tile, pack);
            // P = exp(S − lse) on the visible prefix; masked tail and
            // zero-mass rows zeroed so the tile GEMMs read dense data.
            for li in 0..rows {
                let i = i0 + li;
                let l = lse[h * lq + i];
                let gvis = (q_offset + i + 1).saturating_sub(kv_offset).min(lc);
                let vis = gvis.saturating_sub(t0).min(tw);
                let row = &mut p_buf[li * tile..li * tile + tw];
                if vis == 0 || l == f32::NEG_INFINITY {
                    row.fill(0.0);
                    continue;
                }
                for s in &mut row[..vis] {
                    *s = (*s - l).exp();
                }
                row[vis..].fill(0.0);
            }
            // dP = dO · V_tileᵀ
            gemm_tile(
                rows,
                tw,
                dh,
                TileView { data: &d_o.as_slice()[i0 * q_width + qc0..], rs: q_width, cs: 1 },
                TileView { data: &v.as_slice()[t0 * kvw + kc0..], rs: 1, cs: kvw },
                ds_buf,
                tile,
                TileWrite::Assign,
                pack,
            );
            // dV_part += Pᵀ · dO
            gemm_tile(
                tw,
                dh,
                rows,
                TileView { data: p_buf, rs: 1, cs: tile },
                TileView { data: &d_o.as_slice()[i0 * q_width + qc0..], rs: q_width, cs: 1 },
                &mut dv_part[t0 * dh..],
                dh,
                TileWrite::Accumulate,
                pack,
            );
            // dS = P ∘ (dP − D) · scale, in place over the dP tile —
            // masked entries have P = 0 and stay exactly 0.
            for li in 0..rows {
                let di = d[h * lq + i0 + li];
                let prow = &p_buf[li * tile..li * tile + tw];
                let dsrow = &mut ds_buf[li * tile..li * tile + tw];
                for (ds, &p) in dsrow.iter_mut().zip(prow) {
                    *ds = p * (*ds - di) * scale;
                }
            }
            // dK_part += dSᵀ · Q
            gemm_tile(
                tw,
                dh,
                rows,
                TileView { data: ds_buf, rs: 1, cs: tile },
                TileView { data: &q.as_slice()[i0 * q_width + qc0..], rs: q_width, cs: 1 },
                &mut dk_part[t0 * dh..],
                dh,
                TileWrite::Accumulate,
                pack,
            );
            // dQ_acc += dS · K_tile
            gemm_tile(
                rows,
                dh,
                tw,
                TileView { data: ds_buf, rs: tile, cs: 1 },
                TileView { data: &k.as_slice()[t0 * kvw + kc0..], rs: kvw, cs: 1 },
                dq_acc,
                dh,
                TileWrite::Accumulate,
                pack,
            );
        }
        for li in 0..rows {
            // Safety: each (row, query-head band) belongs to exactly one
            // (group, q-block) task.
            let dqrow = unsafe { dq_view.range_mut((i0 + li) * q_width + qc0, dh) };
            for (a, b) in dqrow.iter_mut().zip(&dq_acc[li * dh..(li + 1) * dh]) {
                *a += b;
            }
        }
    }
}

/// Backward over every chunk of a chunked KV cache. Returns
/// `(dQ, per-chunk (dK, dV))`.
#[allow(clippy::too_many_arguments)]
pub fn backward_chunked(
    q: &Tensor,
    chunks: &[(&Tensor, &Tensor)],
    chunk_offsets: &[usize],
    d_o: &Tensor,
    o: &Tensor,
    lse: &[f32],
    cfg: HeadCfg,
    q_offset: usize,
) -> (Tensor, Vec<(Tensor, Tensor)>) {
    let d = d_rows(d_o, o, cfg);
    let mut dq = Tensor::zeros_pooled(q.rows(), cfg.q_width());
    let mut dkv = Vec::with_capacity(chunks.len());
    for (c, (k, v)) in chunks.iter().enumerate() {
        let (dq_c, dk, dv) =
            backward_chunk(q, k, v, d_o, lse, &d, cfg, q_offset, chunk_offsets[c]);
        dq.add_assign(&dq_c);
        dq_c.recycle();
        dkv.push((dk, dv));
    }
    pool::recycle(d);
    (dq, dkv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_uniform;
    use crate::ops::softmax_rows;

    /// Naive full causal attention (explicit softmax) for one head layout —
    /// scores come from the shared maskable implementation
    /// ([`masked_scores`]), so there is exactly one score/mask code path.
    fn naive_full(q: &Tensor, k: &Tensor, v: &Tensor, cfg: HeadCfg) -> Tensor {
        let (lq, dh) = (q.rows(), cfg.head_dim);
        let mut o = Tensor::zeros(lq, cfg.q_width());
        for h in 0..cfg.n_heads {
            let kvh = h / (cfg.n_heads / cfg.n_kv_heads);
            let mut scores = masked_scores(q, k, cfg, h, 0, 0);
            softmax_rows(&mut scores);
            for i in 0..lq {
                for c in 0..dh {
                    let mut acc = 0.0;
                    for j in 0..k.rows() {
                        acc += scores.at(i, j) * v.at(j, kvh * dh + c);
                    }
                    *o.at_mut(i, h * dh + c) = acc;
                }
            }
            scores.recycle();
        }
        o
    }

    #[test]
    fn full_matches_naive() {
        let cfg = HeadCfg::new(4, 4, 8);
        let q = seeded_uniform(12, 32, 1);
        let k = seeded_uniform(12, 32, 2);
        let v = seeded_uniform(12, 32, 3);
        let got = forward_full(&q, &k, &v, cfg);
        assert!(got.o.max_abs_diff(&naive_full(&q, &k, &v, cfg)) < 1e-4);
    }

    #[test]
    fn gqa_matches_naive() {
        let cfg = HeadCfg::new(4, 2, 6);
        let q = seeded_uniform(10, 24, 4);
        let k = seeded_uniform(10, 12, 5);
        let v = seeded_uniform(10, 12, 6);
        let got = forward_full(&q, &k, &v, cfg);
        assert!(got.o.max_abs_diff(&naive_full(&q, &k, &v, cfg)) < 1e-4);
    }

    #[test]
    fn chunked_equals_full_for_any_split() {
        let cfg = HeadCfg::new(2, 2, 4);
        let s = 16;
        let q = seeded_uniform(s, 8, 7);
        let k = seeded_uniform(s, 8, 8);
        let v = seeded_uniform(s, 8, 9);
        let full = forward_full(&q, &k, &v, cfg);
        for &nchunks in &[2usize, 4, 8] {
            let lc = s / nchunks;
            let ks: Vec<Tensor> = (0..nchunks).map(|c| k.rows_slice(c * lc, lc)).collect();
            let vs: Vec<Tensor> = (0..nchunks).map(|c| v.rows_slice(c * lc, lc)).collect();
            let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
            let offsets: Vec<usize> = (0..nchunks).map(|c| c * lc).collect();
            let got = forward_chunked(&q, &chunks, &offsets, cfg, 0);
            assert!(got.o.max_abs_diff(&full.o) < 1e-4, "nchunks={nchunks}");
            for (a, b) in got.lse.iter().zip(&full.lse) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn sliced_queries_reconstruct_full_sequence() {
        // The SlimPipe pattern: process queries slice by slice against the
        // accumulated KV cache; concatenated outputs must equal monolithic
        // attention over the whole sequence.
        let cfg = HeadCfg::new(2, 1, 4);
        let (s, n) = (24, 4);
        let l = s / n;
        let q = seeded_uniform(s, 8, 10);
        let k = seeded_uniform(s, 4, 11);
        let v = seeded_uniform(s, 4, 12);
        let full = forward_full(&q, &k, &v, cfg);

        let mut rebuilt = Tensor::zeros(s, 8);
        for sl in 0..n {
            let qs = q.rows_slice(sl * l, l);
            let ks: Vec<Tensor> = (0..=sl).map(|c| k.rows_slice(c * l, l)).collect();
            let vs: Vec<Tensor> = (0..=sl).map(|c| v.rows_slice(c * l, l)).collect();
            let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
            let offsets: Vec<usize> = (0..=sl).map(|c| c * l).collect();
            let got = forward_chunked(&qs, &chunks, &offsets, cfg, sl * l);
            rebuilt.set_rows(sl * l, &got.o);
        }
        assert!(rebuilt.max_abs_diff(&full.o) < 1e-4);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let cfg = HeadCfg::new(2, 2, 4);
        let q = seeded_uniform(6, 8, 13);
        let k = seeded_uniform(12, 8, 14);
        let v = seeded_uniform(12, 8, 15);
        // queries at offset 6..12 so both chunks are fully/partially visible
        let p0 = partial(&q, &k.rows_slice(0, 6), &v.rows_slice(0, 6), cfg, 6, 0);
        let p1 = partial(&q, &k.rows_slice(6, 6), &v.rows_slice(6, 6), cfg, 6, 6);
        let ab = merge_partials(&p0, &p1, cfg);
        let ba = merge_partials(&p1, &p0, cfg);
        assert!(ab.o.max_abs_diff(&ba.o) < 1e-5);
        let full = partial(&q, &k, &v, cfg, 6, 0);
        assert!(ab.o.max_abs_diff(&full.o) < 1e-4);
    }

    #[test]
    fn empty_visibility_yields_zero_mass() {
        let cfg = HeadCfg::new(1, 1, 4);
        let q = seeded_uniform(2, 4, 16);
        let k = seeded_uniform(4, 4, 17);
        let v = seeded_uniform(4, 4, 18);
        // Keys live at positions 10..14; queries at 0..2 see none of them.
        let p = partial(&q, &k, &v, cfg, 0, 10);
        assert!(p.lse.iter().all(|&l| l == f32::NEG_INFINITY));
        assert_eq!(p.o.sq_norm(), 0.0);
    }

    /// Forcing the (head, q-block) parallel path must reproduce the
    /// sequential result bit for bit in *both* kernel regimes: tasks own
    /// disjoint output regions, and per-element accumulation order is
    /// thread-count-independent either way.
    #[test]
    fn parallel_forward_and_backward_are_bit_deterministic() {
        let cfg = HeadCfg::new(8, 2, 16);
        let s = 96; // n_heads * s * s * dh > PAR_ATTN_WORK
        let q = seeded_uniform(s, cfg.q_width(), 60);
        let k = seeded_uniform(s, cfg.kv_width(), 61);
        let v = seeded_uniform(s, cfg.kv_width(), 62);
        let d_o = seeded_uniform(s, cfg.q_width(), 63);

        for kernel in [AttnKernel::Scalar, AttnKernel::Gemm] {
            with_attn_kernel(kernel, || {
                let seq = rayon::with_num_threads(1, || forward_full(&q, &k, &v, cfg));
                let par = rayon::with_num_threads(4, || forward_full(&q, &k, &v, cfg));
                assert_eq!(seq.o, par.o, "{kernel:?}");
                assert_eq!(seq.lse, par.lse, "{kernel:?}");

                let (dq_s, dkv_s) = rayon::with_num_threads(1, || {
                    backward_chunked(&q, &[(&k, &v)], &[0], &d_o, &seq.o, &seq.lse, cfg, 0)
                });
                let (dq_p, dkv_p) = rayon::with_num_threads(4, || {
                    backward_chunked(&q, &[(&k, &v)], &[0], &d_o, &seq.o, &seq.lse, cfg, 0)
                });
                assert_eq!(dq_s, dq_p, "{kernel:?}");
                assert_eq!(dkv_s[0].0, dkv_p[0].0, "{kernel:?}");
                assert_eq!(dkv_s[0].1, dkv_p[0].1, "{kernel:?}");
            });
        }
    }

    /// Scalar and gemm regimes compute the same attention up to float
    /// summation order — forward, lse, and all three chunk gradients —
    /// including across a ragged chunk split.
    #[test]
    fn scalar_and_gemm_regimes_agree() {
        let cfg = HeadCfg::new(4, 2, 16);
        let s = 70; // ragged vs Q_BLOCK and KV_TILE
        let q = seeded_uniform(s, cfg.q_width(), 80);
        let k = seeded_uniform(s, cfg.kv_width(), 81);
        let v = seeded_uniform(s, cfg.kv_width(), 82);
        let d_o = seeded_uniform(s, cfg.q_width(), 83);

        let run = |kernel| {
            with_attn_kernel(kernel, || {
                let fwd = forward_full(&q, &k, &v, cfg);
                let bwd = backward_chunked(&q, &[(&k, &v)], &[0], &d_o, &fwd.o, &fwd.lse, cfg, 0);
                (fwd, bwd)
            })
        };
        let (f_s, (dq_s, dkv_s)) = run(AttnKernel::Scalar);
        let (f_g, (dq_g, dkv_g)) = run(AttnKernel::Gemm);
        assert!(f_s.o.max_abs_diff(&f_g.o) < 1e-4);
        for (a, b) in f_s.lse.iter().zip(&f_g.lse) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!(dq_s.max_abs_diff(&dq_g) < 1e-3);
        assert!(dkv_s[0].0.max_abs_diff(&dkv_g[0].0) < 1e-3);
        assert!(dkv_s[0].1.max_abs_diff(&dkv_g[0].1) < 1e-3);

        // Ragged split, queries offset so chunks are partially visible.
        let p_s = with_attn_kernel(AttnKernel::Scalar, || {
            partial(&q, &k.rows_slice(3, 41), &v.rows_slice(3, 41), cfg, 10, 3)
        });
        let p_g = with_attn_kernel(AttnKernel::Gemm, || {
            partial(&q, &k.rows_slice(3, 41), &v.rows_slice(3, 41), cfg, 10, 3)
        });
        assert!(p_s.o.max_abs_diff(&p_g.o) < 1e-4);
        for (a, b) in p_s.lse.iter().zip(&p_g.lse) {
            assert!(a == b || (a - b).abs() < 1e-4);
        }
    }

    /// merge_partials_into must equal merge_partials exactly.
    #[test]
    fn in_place_merge_equals_allocating_merge() {
        let cfg = HeadCfg::new(2, 2, 4);
        let q = seeded_uniform(6, 8, 70);
        let k = seeded_uniform(12, 8, 71);
        let v = seeded_uniform(12, 8, 72);
        let p0 = partial(&q, &k.rows_slice(0, 6), &v.rows_slice(0, 6), cfg, 6, 0);
        let p1 = partial(&q, &k.rows_slice(6, 6), &v.rows_slice(6, 6), cfg, 6, 6);
        let want = merge_partials(&p0, &p1, cfg);
        let mut acc = p0;
        merge_partials_into(&mut acc, &p1, cfg);
        assert_eq!(acc.o, want.o);
        assert_eq!(acc.lse, want.lse);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let cfg = HeadCfg::new(2, 1, 4);
        let s = 8;
        let q = seeded_uniform(s, 8, 20);
        let k = seeded_uniform(s, 4, 21);
        let v = seeded_uniform(s, 4, 22);
        let d_o = seeded_uniform(s, 8, 23);

        let fwd = forward_full(&q, &k, &v, cfg);
        let (dq, dkv) = backward_chunked(
            &q,
            &[(&k, &v)],
            &[0],
            &d_o,
            &fwd.o,
            &fwd.lse,
            cfg,
            0,
        );
        let (dk, dv) = (&dkv[0].0, &dkv[0].1);

        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| -> f64 {
            forward_full(qq, kk, vv, cfg)
                .o
                .as_slice()
                .iter()
                .zip(d_o.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum()
        };
        let eps = 1e-2f32;
        for idx in [0usize, 13, 37, 63] {
            let mut qp = q.clone();
            qp.as_mut_slice()[idx] += eps;
            let mut qm = q.clone();
            qm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&qp, &k, &v) - loss(&qm, &k, &v)) / (2.0 * eps as f64);
            assert!(
                (fd - dq.as_slice()[idx] as f64).abs() < 2e-2,
                "dq[{idx}] fd={fd} got={}",
                dq.as_slice()[idx]
            );
        }
        for idx in [0usize, 9, 21, 31] {
            let mut kp = k.clone();
            kp.as_mut_slice()[idx] += eps;
            let mut km = k.clone();
            km.as_mut_slice()[idx] -= eps;
            let fd = (loss(&q, &kp, &v) - loss(&q, &km, &v)) / (2.0 * eps as f64);
            assert!((fd - dk.as_slice()[idx] as f64).abs() < 2e-2, "dk[{idx}]");

            let mut vp = v.clone();
            vp.as_mut_slice()[idx] += eps;
            let mut vm = v.clone();
            vm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&q, &k, &vp) - loss(&q, &k, &vm)) / (2.0 * eps as f64);
            assert!((fd - dv.as_slice()[idx] as f64).abs() < 2e-2, "dv[{idx}]");
        }
    }

    #[test]
    fn chunked_backward_equals_monolithic_backward() {
        let cfg = HeadCfg::new(2, 2, 4);
        let s = 12;
        let q = seeded_uniform(s, 8, 30);
        let k = seeded_uniform(s, 8, 31);
        let v = seeded_uniform(s, 8, 32);
        let d_o = seeded_uniform(s, 8, 33);

        let fwd = forward_full(&q, &k, &v, cfg);
        let (dq_ref, dkv_ref) =
            backward_chunked(&q, &[(&k, &v)], &[0], &d_o, &fwd.o, &fwd.lse, cfg, 0);

        let lc = 4;
        let ks: Vec<Tensor> = (0..3).map(|c| k.rows_slice(c * lc, lc)).collect();
        let vs: Vec<Tensor> = (0..3).map(|c| v.rows_slice(c * lc, lc)).collect();
        let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offsets = [0, 4, 8];
        let fwd2 = forward_chunked(&q, &chunks, &offsets, cfg, 0);
        let (dq, dkv) =
            backward_chunked(&q, &chunks, &offsets, &d_o, &fwd2.o, &fwd2.lse, cfg, 0);

        assert!(dq.max_abs_diff(&dq_ref) < 1e-4);
        let mut dk_cat = Tensor::zeros(s, 8);
        let mut dv_cat = Tensor::zeros(s, 8);
        for (c, (dk, dv)) in dkv.iter().enumerate() {
            dk_cat.set_rows(c * lc, dk);
            dv_cat.set_rows(c * lc, dv);
        }
        assert!(dk_cat.max_abs_diff(&dkv_ref[0].0) < 1e-4);
        assert!(dv_cat.max_abs_diff(&dkv_ref[0].1) < 1e-4);
    }
}
