//! Cache-blocked, packed, register-tiled GEMM — one kernel shared by the
//! three orientations the backward pass needs, plus the steady-state
//! machinery the training loop leans on: a **persistent packed-weight
//! cache** and **fused prologues/epilogues**.
//!
//! Layout follows the classic GotoBLAS/BLIS decomposition: `NC`-wide column
//! panels × `KC`-deep rank updates, with B packed into `nr`-column slivers
//! and A packed per `MC`-row block into `MR`-row slivers, both k-major and
//! zero-padded to full sliver width. The innermost `MR×nr` micro-kernel
//! accumulates into a register tile over fixed-size array chunks, so LLVM
//! keeps the accumulators in vector registers and the inner loop
//! autovectorizes. Two widths exist: the original `8×8` tile and a wider
//! `8×16` tile (two 8-lane rows / one AVX-512 vector per row) selected by
//! [`kernel_nr`] — results are bit-identical across widths because each C
//! element's k-accumulation order never changes.
//!
//! **Packed-weight cache.** Weight matrices are the *same* operand for all
//! `S × M` microbatch-slice GEMM calls of a training step, so re-packing
//! them per call is pure redundant memory traffic. [`PackedMat`] packs a
//! weight once into pool-backed, 64-byte-aligned panels (`pack_nn` for the
//! forward `A·W` orientation, `pack_nt` for the backward `dY·Wᵀ`), and
//! [`PackedWeight`] bundles a weight tensor with both packed forms,
//! keeping them in sync through in-place [`PackedWeight::axpy`] optimizer
//! updates — the steady state performs **zero** weight packs, which
//! [`gemm_packs_per_step`] makes testable. Fused entry points taking a
//! `PackedMat` always run the blocked kernel: the small-size fallback
//! exists to amortise packing overhead, and a cached pack has none.
//!
//! **Fused prologue/epilogue.** The [`Prologue`] maps A elements during
//! `pack_a` — RMSNorm's `(x·inv_rms)·gain` scaling and SwiGLU's
//! `silu(gate)·up` product, in the exact elementwise order the standalone
//! `rmsnorm`/`swiglu` kernels use, so fused and unfused compositions are
//! bit-identical. The [`Epilogue`] applies on the register tile at
//! writeback (`C = A·B + X` residual adds), and the `*_acc` variants
//! accumulate straight into a caller tensor (`C += A·B`, the gradient
//! shape) — removing the separate full-tensor `add`/`swiglu::forward`
//! passes around every GEMM in the layer hot loop.
//!
//! Orientations are expressed as strided *views* feeding the pack step:
//! `A·B`, `A·Bᵀ` (`dX = dY·Wᵀ`, attention scores `Q·Kᵀ`) and `Aᵀ·B`
//! (`dW = Xᵀ·dY`) all run the identical blocked kernel. Work is
//! parallelized over `MC`-row output blocks (disjoint row ranges of C),
//! dispatched as row-block tasks onto the persistent worker pool behind the
//! `rayon` shim — no threads are spawned per call — and every buffer — the
//! output, the pack panels, the per-task pack blocks — comes from the
//! [`crate::pool`], so steady-state calls allocate nothing. Each C
//! element's accumulation order is fixed by the `pc` loop regardless of
//! which worker runs which row block, so results are bit-identical across
//! thread counts.
//!
//! Unpacked matrices smaller than [`SMALL_GEMM_FLOPS`] take a branch-free
//! orientation-specific loop instead: at executor scale (hidden ≈ 32) the
//! packing overhead would dominate. The small loops accumulate each C
//! element in the same ascending-k order as the blocked kernel, so packed
//! and unpacked paths agree bit-for-bit at every size.

use crate::ops::{silu, silu_grad};
use crate::pool;
use crate::shared::SyncSliceMut;
use crate::tensor::Tensor;
use rayon::prelude::*;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Micro-tile rows (register blocking).
const MR: usize = 8;
/// Narrow micro-tile width: one AVX2 vector of accumulators per row.
const NR_NARROW: usize = 8;
/// Wide micro-tile width: two 8-lane rows (one AVX-512 vector) per row.
const NR_WIDE: usize = 16;
/// Rows per parallel task block (multiple of `MR`; A block is MC×KC ≈ 64 KiB).
const MC: usize = 64;
/// Rank-update depth (B sliver stays L1-resident; k ≤ 512 runs as a single
/// rank update so each C tile is written once).
const KC: usize = 512;
/// Column panel width (B panel ≈ KC×NC ≈ 2 MiB, L2/L3-resident; a multiple
/// of both micro-kernel widths).
const NC: usize = 2048;

/// Below this `m·n·k` product the blocked kernel's packing overhead
/// dominates and a direct loop wins — for *unpacked* operands only; packed
/// weights skip the pack and always take the blocked kernel.
const SMALL_GEMM_FLOPS: usize = 1 << 18;

/// Work (in multiply-adds) under which a GEMM stays on the calling thread.
const PAR_GEMM_FLOPS: usize = 1 << 21;

// ---- micro-kernel width selection ----

/// `0` = unresolved (read `SLIMPIPE_GEMM_NR` on first use).
static KERNEL_NR: AtomicUsize = AtomicUsize::new(0);

/// Default micro-kernel width: `8×16` on AVX-512 hosts (one zmm of
/// accumulators per row, explicit intrinsics), `8×8` elsewhere — a 16-wide
/// tile needs more accumulator registers than narrower ISAs have, and the
/// autovectorized fallback spills.
fn default_nr() -> usize {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        return NR_WIDE;
    }
    NR_NARROW
}

/// Current micro-kernel width (8 or 16). First use resolves the
/// `SLIMPIPE_GEMM_NR` environment variable; invalid values fall back to
/// the default. Both widths produce bit-identical results — the switch
/// exists for tuning and for the conformance matrix.
pub fn kernel_nr() -> usize {
    match KERNEL_NR.load(Ordering::Relaxed) {
        0 => {
            let nr = std::env::var("SLIMPIPE_GEMM_NR")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n == NR_NARROW || *n == NR_WIDE)
                .unwrap_or_else(default_nr);
            KERNEL_NR.store(nr, Ordering::Relaxed);
            nr
        }
        n => n,
    }
}

/// Force the micro-kernel width process-wide (8 or 16).
pub fn set_kernel_nr(nr: usize) {
    assert!(nr == NR_NARROW || nr == NR_WIDE, "kernel width must be 8 or 16");
    KERNEL_NR.store(nr, Ordering::Relaxed);
}

/// Run `f` under a forced micro-kernel width, restoring the previous one
/// even if `f` panics (tests assert inside these closures; a failing one
/// must not leave the process-global width forced for later tests).
pub fn with_kernel_nr<T>(nr: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            KERNEL_NR.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(kernel_nr());
    set_kernel_nr(nr);
    f()
}

// ---- weight-pack accounting ----

// The pack total lives in the unified observability registry
// (`slimpipe_obs::counters::WEIGHT_PACKS`); the epoch mark is local — it
// snapshots the registry value at the top of each step.
static PACK_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Total [`PackedMat`] pack operations since process start. Per-call
/// activation packing inside the GEMM does **not** count — this meters the
/// weight packs the persistent cache exists to eliminate. Thin shim over
/// `slimpipe_obs::counters::WEIGHT_PACKS`.
pub fn weight_packs_total() -> u64 {
    slimpipe_obs::counters::WEIGHT_PACKS.get()
}

/// Mark the start of a training step for [`gemm_packs_per_step`]. The
/// executor calls this at the top of every step; anything that packs after
/// the mark (it must not, in steady state) shows up in the counter.
pub fn begin_pack_epoch() {
    PACK_EPOCH.store(weight_packs_total(), Ordering::Relaxed);
}

/// Weight packs since the last [`begin_pack_epoch`] — the steady-state
/// training invariant is that this reads **zero**: weights pack once at
/// build time and stay packed (optimizer updates are applied in place by
/// [`PackedWeight::axpy`]), so none of the `S × M` GEMM calls per step
/// re-packs anything.
pub fn gemm_packs_per_step() -> u64 {
    weight_packs_total() - PACK_EPOCH.load(Ordering::Relaxed)
}

/// Read-only strided matrix view: element `(i, j)` is
/// `data[i * rs + j * cs]`. Transposition is a stride swap.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl View<'_> {
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

// ---- fused prologue / epilogue ----

/// Elementwise map applied to A elements *during packing* — the fusion
/// point for the cheap prologues that used to be separate full-tensor
/// passes. Every variant reproduces the standalone kernel's arithmetic
/// exactly (same operand order), so fused ≡ unfused at the bit level.
///
/// `Rows` variants index per-token state by the A row (row-major
/// activations in forward/`dX` GEMMs); `Cols` variants by the A column
/// (the `Aᵀ` views of `dW = Xᵀ·dY` GEMMs, where tokens run along k).
#[derive(Clone, Copy)]
pub enum Prologue<'a> {
    /// Identity: plain packing.
    None,
    /// RMSNorm fused on a row-major activation:
    /// `a'[i,p] = (a[i,p] · inv[i]) · gain[p]` — `inv` is per-row
    /// (token) inverse RMS from [`crate::rmsnorm::inv_rms`], `gain` the
    /// learned per-feature gain.
    NormRows { inv: &'a [f32], gain: &'a [f32] },
    /// RMSNorm fused on a transposed activation view:
    /// `a'[i,p] = (a[i,p] · inv[p]) · gain[i]`.
    NormCols { inv: &'a [f32], gain: &'a [f32] },
    /// SwiGLU fused on the row-major gate tensor (A **is** `gate`):
    /// `a'[i,p] = silu(a[i,p]) · up[i,p]`.
    SwigluRows { up: &'a Tensor },
    /// SwiGLU fused on the transposed gate view:
    /// `a'[i,p] = silu(a[i,p]) · up[p,i]`.
    SwigluCols { up: &'a Tensor },
    /// SwiGLU *backward* `d_gate` map fused on the row-major upstream
    /// gradient (the operand **is** `d_act`):
    /// `a'[i,p] = (a[i,p] · up[i,p]) · silu_grad(gate[i,p])` — the exact
    /// expression `swiglu::backward` evaluates, so fused ≡ unfused at the
    /// bit level. As a *B-side* prologue (weight-gradient GEMMs) the same
    /// variant applies with `(i, p) = (token, feature)` — B is the
    /// row-major `d_act`, tokens along k.
    DSwigluGateRows { gate: &'a Tensor, up: &'a Tensor },
    /// SwiGLU backward `d_up` map: `a'[i,p] = a[i,p] · silu(gate[i,p])`.
    DSwigluUpRows { gate: &'a Tensor },
}

impl Prologue<'_> {
    /// Shape-check the prologue operands against the A *view* extents
    /// (`vi` output rows, `vp` k entries) — a mis-sized `inv`/`gain`/`up`
    /// must panic at the entry point, not silently read wrong elements.
    fn validate(&self, vi: usize, vp: usize) {
        match self {
            Prologue::None => {}
            Prologue::NormRows { inv, gain } => {
                assert_eq!(inv.len(), vi, "NormRows inv length mismatch");
                assert_eq!(gain.len(), vp, "NormRows gain length mismatch");
            }
            Prologue::NormCols { inv, gain } => {
                assert_eq!(inv.len(), vp, "NormCols inv length mismatch");
                assert_eq!(gain.len(), vi, "NormCols gain length mismatch");
            }
            Prologue::SwigluRows { up } => {
                assert_eq!(up.shape(), (vi, vp), "SwigluRows up shape mismatch");
            }
            Prologue::SwigluCols { up } => {
                assert_eq!(up.shape(), (vp, vi), "SwigluCols up shape mismatch");
            }
            Prologue::DSwigluGateRows { gate, up } => {
                assert_eq!(gate.shape(), (vi, vp), "DSwigluGateRows gate shape mismatch");
                assert_eq!(up.shape(), (vi, vp), "DSwigluGateRows up shape mismatch");
            }
            Prologue::DSwigluUpRows { gate } => {
                assert_eq!(gate.shape(), (vi, vp), "DSwigluUpRows gate shape mismatch");
            }
        }
    }

    /// Map element value `x` at logical A position `(i, p)`.
    #[inline(always)]
    fn apply(&self, x: f32, i: usize, p: usize) -> f32 {
        match self {
            Prologue::None => x,
            Prologue::NormRows { inv, gain } => (x * inv[i]) * gain[p],
            Prologue::NormCols { inv, gain } => (x * inv[p]) * gain[i],
            Prologue::SwigluRows { up } => silu(x) * up.as_slice()[i * up.cols() + p],
            Prologue::SwigluCols { up } => silu(x) * up.as_slice()[p * up.cols() + i],
            Prologue::DSwigluGateRows { gate, up } => {
                let idx = i * gate.cols() + p;
                (x * up.as_slice()[idx]) * silu_grad(gate.as_slice()[idx])
            }
            Prologue::DSwigluUpRows { gate } => x * silu(gate.as_slice()[i * gate.cols() + p]),
        }
    }
}

/// Elementwise op applied on the register tile at writeback, after the
/// last rank update — fuses what used to be a separate output pass.
#[derive(Clone, Copy)]
pub enum Epilogue<'a> {
    /// Plain writeback.
    None,
    /// `C = A·B + X` — the residual add, `X` shaped like C.
    Add(&'a Tensor),
}

// ---- persistent packed weights ----

/// A weight matrix packed once into the blocked kernel's B-panel layout:
/// `nr`-column k-major slivers grouped into `(jc, pc)` panels, in a
/// pool-backed 64-byte-aligned buffer. Logically always the `(k, n)` B
/// operand of `C[m,n] = A[m,k] · B[k,n]`; the *orientation* of the
/// underlying tensor is baked in at pack time ([`PackedMat::pack_nn`] /
/// [`PackedMat::pack_nt`]), so callers never re-derive strides.
///
/// Dropping a `PackedMat` recycles its buffer into the aligned pool, so
/// rebuilt stages re-pack allocation-free.
pub struct PackedMat {
    k: usize,
    n: usize,
    nr: usize,
    data: ManuallyDrop<pool::AlignedVec>,
}

/// Packed length of a `(k, n)` B operand at sliver width `nr`.
fn packed_len(k: usize, n: usize, nr: usize) -> usize {
    let full = (n / NC) * NC * k;
    let rem = n % NC;
    full + rem.div_ceil(nr) * nr * k
}

/// Element offset of the `(jc, pc)` panel inside the packed buffer.
/// Column panels are stored jc-major; within one, `KC`-strips are
/// consecutive, each `slivers · nr · kc` long.
fn panel_offset(k: usize, n: usize, nr: usize, jc: usize, pc: usize) -> usize {
    // Every previous column panel is a full NC wide and nr divides NC.
    let prev = jc * k;
    let slivers = (n - jc).min(NC).div_ceil(nr);
    prev + slivers * nr * pc
}

impl PackedMat {
    fn pack(view: View<'_>, k: usize, n: usize) -> Self {
        let nr = kernel_nr();
        let mut data = pool::take_aligned(packed_len(k, n, nr));
        for jc in (0..n).step_by(NC) {
            let nc = (n - jc).min(NC);
            let slivers = nc.div_ceil(nr);
            for pc in (0..k).step_by(KC) {
                let kc = (k - pc).min(KC);
                let off = panel_offset(k, n, nr, jc, pc);
                pack_b(&mut data[off..off + slivers * nr * kc], view, &Prologue::None, pc, jc, kc, nc, nr);
            }
        }
        slimpipe_obs::counters::WEIGHT_PACKS.incr();
        PackedMat { k, n, nr, data: ManuallyDrop::new(data) }
    }

    /// Pack `w` as-is: the `B` of forward `C = A · W`, `W: (k, n)`.
    pub fn pack_nn(w: &Tensor) -> Self {
        Self::pack(
            View { data: w.as_slice(), rs: w.cols(), cs: 1 },
            w.rows(),
            w.cols(),
        )
    }

    /// Pack `wᵀ`: the `B` of backward `dX = dY · Wᵀ`, `W: (n, k)`.
    pub fn pack_nt(w: &Tensor) -> Self {
        Self::pack(
            View { data: w.as_slice(), rs: 1, cs: w.cols() },
            w.cols(),
            w.rows(),
        )
    }

    /// Inner (k) dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output-column (n) dimension of the packed operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `(jc, pc)` panel slice, identical in layout to what a per-call
    /// `pack_b` would produce.
    fn panel(&self, jc: usize, pc: usize, kc: usize) -> &[f32] {
        let slivers = (self.n - jc).min(NC).div_ceil(self.nr);
        let off = panel_offset(self.k, self.n, self.nr, jc, pc);
        &self.data[off..off + slivers * self.nr * kc]
    }

    /// In-place `packed += alpha · G` where `g` is viewed in this pack's
    /// orientation — keeps the pack bit-identical to a fresh pack of the
    /// updated weight (`w + alpha·g` is computed with the same expression
    /// [`Tensor::axpy`] uses) without counting as a re-pack.
    fn axpy(&mut self, alpha: f32, g: View<'_>) {
        let (k, n, nr) = (self.k, self.n, self.nr);
        for jc in (0..n).step_by(NC) {
            let nc = (n - jc).min(NC);
            let slivers = nc.div_ceil(nr);
            for pc in (0..k).step_by(KC) {
                let kc = (k - pc).min(KC);
                let off = panel_offset(k, n, nr, jc, pc);
                let panel = &mut self.data[off..off + slivers * nr * kc];
                for t in 0..slivers {
                    let cols = (nc - t * nr).min(nr);
                    let base = t * kc * nr;
                    for p in 0..kc {
                        let row = &mut panel[base + p * nr..base + p * nr + cols];
                        for (c, dst) in row.iter_mut().enumerate() {
                            *dst += alpha * g.at(pc + p, jc + t * nr + c);
                        }
                    }
                }
            }
        }
    }
}

impl Drop for PackedMat {
    fn drop(&mut self) {
        // Safety: `data` is never touched again after take.
        pool::recycle_aligned(unsafe { ManuallyDrop::take(&mut self.data) });
    }
}

impl std::fmt::Debug for PackedMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackedMat(k={}, n={}, nr={})", self.k, self.n, self.nr)
    }
}

/// A weight tensor bundled with its two persistent packed forms — what a
/// layer owns instead of a bare [`Tensor`]. Packed once at build; the
/// optimizer applies updates *into* the packs ([`PackedWeight::axpy`]), so
/// the steady-state training loop never re-packs (see
/// [`gemm_packs_per_step`]).
pub struct PackedWeight {
    t: Tensor,
    nn: PackedMat,
    nt: PackedMat,
}

impl PackedWeight {
    /// Pack `t` in both GEMM orientations (2 weight packs).
    pub fn new(t: Tensor) -> Self {
        let nn = PackedMat::pack_nn(&t);
        let nt = PackedMat::pack_nt(&t);
        Self { t, nn, nt }
    }

    /// The plain weight tensor (checkpointing, comparisons, tests).
    pub fn tensor(&self) -> &Tensor {
        &self.t
    }

    /// Packed form for `C = A · W` (forward projections).
    pub fn nn(&self) -> &PackedMat {
        &self.nn
    }

    /// Packed form for `C = A · Wᵀ` (backward `dX` GEMMs).
    pub fn nt(&self) -> &PackedMat {
        &self.nt
    }

    /// Optimizer update `w += alpha · g`, applied to the tensor **and**
    /// both packed forms in place — bit-identical to re-packing the
    /// updated tensor, without the pack.
    pub fn axpy(&mut self, alpha: f32, g: &Tensor) {
        assert_eq!(self.t.shape(), g.shape(), "packed axpy shape mismatch");
        self.t.axpy(alpha, g);
        self.nn.axpy(alpha, View { data: g.as_slice(), rs: g.cols(), cs: 1 });
        self.nt.axpy(alpha, View { data: g.as_slice(), rs: 1, cs: g.cols() });
    }
}

impl Clone for PackedWeight {
    fn clone(&self) -> Self {
        Self::new(self.t.clone())
    }
}

impl std::fmt::Debug for PackedWeight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackedWeight({}x{})", self.t.rows(), self.t.cols())
    }
}

// ---- pack kernels ----

/// Pack `mc×kc` of A (from `(i0, p0)`) into `MR`-row k-major slivers,
/// zero-padding the ragged last sliver, applying the fused prologue per
/// element.
fn pack_a(dst: &mut [f32], a: View<'_>, pro: &Prologue<'_>, i0: usize, p0: usize, mc: usize, kc: usize) {
    let slivers = mc.div_ceil(MR);
    for s in 0..slivers {
        let rows = (mc - s * MR).min(MR);
        let base = s * kc * MR;
        if a.cs == 1 && rows == MR {
            // Row-major A, full sliver: copy rows through slices so the
            // inner loop is contiguous loads with hoisted bounds checks.
            // The prologue match is per-row, not per-element.
            for r in 0..MR {
                let gi = i0 + s * MR + r;
                let src = &a.data[gi * a.rs + p0..][..kc];
                match pro {
                    Prologue::None => {
                        for (p, &v) in src.iter().enumerate() {
                            dst[base + p * MR + r] = v;
                        }
                    }
                    Prologue::NormRows { inv, gain } => {
                        let ir = inv[gi];
                        let g = &gain[p0..p0 + kc];
                        for (p, &v) in src.iter().enumerate() {
                            dst[base + p * MR + r] = (v * ir) * g[p];
                        }
                    }
                    Prologue::SwigluRows { up } => {
                        let u = &up.as_slice()[gi * up.cols() + p0..][..kc];
                        for (p, &v) in src.iter().enumerate() {
                            dst[base + p * MR + r] = silu(v) * u[p];
                        }
                    }
                    Prologue::DSwigluGateRows { gate, up } => {
                        let g = &gate.as_slice()[gi * gate.cols() + p0..][..kc];
                        let u = &up.as_slice()[gi * up.cols() + p0..][..kc];
                        for (p, &v) in src.iter().enumerate() {
                            dst[base + p * MR + r] = (v * u[p]) * silu_grad(g[p]);
                        }
                    }
                    Prologue::DSwigluUpRows { gate } => {
                        let g = &gate.as_slice()[gi * gate.cols() + p0..][..kc];
                        for (p, &v) in src.iter().enumerate() {
                            dst[base + p * MR + r] = v * silu(g[p]);
                        }
                    }
                    _ => {
                        for (p, &v) in src.iter().enumerate() {
                            dst[base + p * MR + r] = pro.apply(v, gi, p0 + p);
                        }
                    }
                }
            }
        } else {
            for p in 0..kc {
                let d = &mut dst[base + p * MR..base + (p + 1) * MR];
                for (r, dr) in d.iter_mut().enumerate() {
                    *dr = if r < rows {
                        let gi = i0 + s * MR + r;
                        pro.apply(a.at(gi, p0 + p), gi, p0 + p)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Pack `kc×nc` of B (from `(p0, j0)`) into `nr`-column k-major slivers,
/// zero-padding the ragged last sliver. The prologue maps elements with
/// `(i, p) = (k-index, column-index)` — for the fused weight-gradient GEMMs
/// whose B is a row-major activation gradient, that is `(token, feature)`,
/// the same convention the `Rows` variants use on A.
#[inline]
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: View<'_>,
    pro: &Prologue<'_>,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    nr: usize,
) {
    let slivers = nc.div_ceil(nr);
    let plain = matches!(pro, Prologue::None);
    for t in 0..slivers {
        let cols = (nc - t * nr).min(nr);
        let base = t * kc * nr;
        if plain && b.cs == 1 && cols == nr {
            for p in 0..kc {
                let src = &b.data[(p0 + p) * b.rs + j0 + t * nr..][..nr];
                dst[base + p * nr..base + (p + 1) * nr].copy_from_slice(src);
            }
        } else if plain && b.rs == 1 && cols == nr {
            // Column-strided view (a transposed row-major matrix): iterate
            // source rows so reads are contiguous; writes stride by nr.
            for (c, col) in (0..nr).map(|c| {
                (c, &b.data[(j0 + t * nr + c) * b.cs + p0..][..kc])
            }) {
                for (p, &v) in col.iter().enumerate() {
                    dst[base + p * nr + c] = v;
                }
            }
        } else if b.cs == 1 && cols == nr {
            // Row-contiguous source with a fused prologue (the `dW` GEMMs'
            // mapped B): contiguous reads, per-element map.
            for p in 0..kc {
                let src = &b.data[(p0 + p) * b.rs + j0 + t * nr..][..nr];
                for (c, &v) in src.iter().enumerate() {
                    dst[base + p * nr + c] = pro.apply(v, p0 + p, j0 + t * nr + c);
                }
            }
        } else {
            for p in 0..kc {
                let d = &mut dst[base + p * nr..base + (p + 1) * nr];
                for (c, dc) in d.iter_mut().enumerate() {
                    *dc = if c < cols {
                        pro.apply(b.at(p0 + p, j0 + t * nr + c), p0 + p, j0 + t * nr + c)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

// ---- micro-kernels ----

/// `MR×8` register micro-kernel: `tile = Σ_p a_sliver[p] ⊗ b_sliver[p]`.
#[inline(always)]
fn micro_kernel8(kc: usize, a: &[f32], b: &[f32], tile: &mut [f32; MR * NR_NARROW]) {
    let mut acc = [0.0f32; MR * NR_NARROW];
    for p in 0..kc {
        // Fixed-size chunks eliminate bounds checks and let LLVM hold the
        // 64 accumulators in vector registers.
        let av: &[f32; MR] = a[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f32; NR_NARROW] = b[p * NR_NARROW..(p + 1) * NR_NARROW].try_into().unwrap();
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR_NARROW {
                acc[i * NR_NARROW + j] += ai * bv[j];
            }
        }
    }
    *tile = acc;
}

/// `MR×16` register micro-kernel — the wide tile: one AVX-512 vector of
/// accumulators per row. The autovectorizer refuses to keep a 128-float
/// accumulator tile in registers (it spills every iteration, ~10× slower
/// measured), so the AVX-512 path is written with explicit intrinsics:
/// 8 zmm accumulators, one zmm load of `b` and 8 broadcast·mul·add per
/// rank-1 update. `mul` + `add` — **not** `fmadd`: rustc never contracts
/// `x*y + z`, so fused-multiply-add would change the bits relative to the
/// scalar and 8-wide kernels, and every "bit-identical across widths"
/// guarantee with them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_kernel16_avx512(kc: usize, a: &[f32], b: &[f32], tile: &mut [f32; MR * NR_WIDE]) {
    use std::arch::x86_64::*;
    debug_assert!(a.len() >= kc * MR && b.len() >= kc * NR_WIDE);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [_mm512_setzero_ps(); MR];
    // Two rank-1 updates per iteration: the second b-vector load issues
    // while the first update's adds drain, hiding load latency. Ascending
    // p order per accumulator is preserved exactly.
    let mut p = 0;
    while p + 4 <= kc {
        // Safety: the pack buffers are sized to kc slivers (asserted
        // above); loads stay in bounds.
        let bv0 = _mm512_loadu_ps(bp.add(p * NR_WIDE));
        let bv1 = _mm512_loadu_ps(bp.add((p + 1) * NR_WIDE));
        let bv2 = _mm512_loadu_ps(bp.add((p + 2) * NR_WIDE));
        let bv3 = _mm512_loadu_ps(bp.add((p + 3) * NR_WIDE));
        let av = ap.add(p * MR);
        for (i, accr) in acc.iter_mut().enumerate() {
            let a0 = _mm512_set1_ps(*av.add(i));
            let a1 = _mm512_set1_ps(*av.add(MR + i));
            let a2 = _mm512_set1_ps(*av.add(2 * MR + i));
            let a3 = _mm512_set1_ps(*av.add(3 * MR + i));
            let t0 = _mm512_add_ps(*accr, _mm512_mul_ps(a0, bv0));
            let t1 = _mm512_add_ps(t0, _mm512_mul_ps(a1, bv1));
            let t2 = _mm512_add_ps(t1, _mm512_mul_ps(a2, bv2));
            *accr = _mm512_add_ps(t2, _mm512_mul_ps(a3, bv3));
        }
        p += 4;
    }
    while p + 2 <= kc {
        let bv0 = _mm512_loadu_ps(bp.add(p * NR_WIDE));
        let bv1 = _mm512_loadu_ps(bp.add((p + 1) * NR_WIDE));
        let av = ap.add(p * MR);
        for (i, accr) in acc.iter_mut().enumerate() {
            let a0 = _mm512_set1_ps(*av.add(i));
            let a1 = _mm512_set1_ps(*av.add(MR + i));
            let t = _mm512_add_ps(*accr, _mm512_mul_ps(a0, bv0));
            *accr = _mm512_add_ps(t, _mm512_mul_ps(a1, bv1));
        }
        p += 2;
    }
    if p < kc {
        let bv = _mm512_loadu_ps(bp.add(p * NR_WIDE));
        let av = ap.add(p * MR);
        for (i, accr) in acc.iter_mut().enumerate() {
            let ai = _mm512_set1_ps(*av.add(i));
            *accr = _mm512_add_ps(*accr, _mm512_mul_ps(ai, bv));
        }
    }
    for (i, v) in acc.iter().enumerate() {
        _mm512_storeu_ps(tile.as_mut_ptr().add(i * NR_WIDE), *v);
    }
}

/// Portable 16-wide kernel (non-AVX-512 hosts). Same arithmetic order as
/// the intrinsic path: `acc = acc + a_i · b_vec`, ascending `p`.
fn micro_kernel16_scalar(kc: usize, a: &[f32], b: &[f32], tile: &mut [f32; MR * NR_WIDE]) {
    let mut acc = [0.0f32; MR * NR_WIDE];
    for p in 0..kc {
        let av: &[f32; MR] = a[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f32; NR_WIDE] = b[p * NR_WIDE..(p + 1) * NR_WIDE].try_into().unwrap();
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR_WIDE {
                acc[i * NR_WIDE + j] += ai * bv[j];
            }
        }
    }
    *tile = acc;
}

/// Resolve the wide kernel's SIMD dispatch once per block, not per tile —
/// the feature check is a cached atomic load, but the micro-kernel runs
/// millions of times per step and doesn't need to repeat it.
#[inline(always)]
fn wide_simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[inline(always)]
fn micro_kernel16(kc: usize, a: &[f32], b: &[f32], tile: &mut [f32; MR * NR_WIDE], simd: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // Safety: `simd` is wide_simd_available(), i.e. avx512f detected.
        unsafe { micro_kernel16_avx512(kc, a, b, tile) };
        return;
    }
    let _ = simd;
    micro_kernel16_scalar(kc, a, b, tile)
}

// ---- blocked kernel core ----

/// The B operand: a strided view (packed per `(jc, pc)` panel on the
/// fly) or a persistent pre-packed weight.
#[derive(Clone, Copy)]
enum BOperand<'a> {
    View(View<'a>),
    Packed(&'a PackedMat),
}

/// One `MC`-row block's worth of rank-`kc` update: pack A, run the micro
/// tiles, write/accumulate into the block's rows of C, applying the
/// epilogue on the final strip.
#[allow(clippy::too_many_arguments)]
fn block_update(
    cblock: &mut [f32],
    n: usize,
    a: View<'_>,
    pro: &Prologue<'_>,
    apack: &mut [f32],
    bpack: &[f32],
    nr: usize,
    i0: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    first_strip: bool,
    last_strip: bool,
    epi: &Epilogue<'_>,
) {
    let mc = cblock.len() / n;
    pack_a(apack, a, pro, i0, pc, mc, kc);
    let simd = wide_simd_available();
    let mut tile8 = [0.0f32; MR * NR_NARROW];
    let mut tile16 = [0.0f32; MR * NR_WIDE];
    for jr in 0..nc.div_ceil(nr) {
        let nr_eff = (nc - jr * nr).min(nr);
        let bsl = &bpack[jr * kc * nr..][..kc * nr];
        for ir in 0..mc.div_ceil(MR) {
            let mr_eff = (mc - ir * MR).min(MR);
            let asl = &apack[ir * kc * MR..][..kc * MR];
            let tile: &[f32] = if nr == NR_WIDE {
                micro_kernel16(kc, asl, bsl, &mut tile16, simd);
                &tile16
            } else {
                micro_kernel8(kc, asl, bsl, &mut tile8);
                &tile8
            };
            for i in 0..mr_eff {
                let gi = i0 + ir * MR + i;
                let crow = &mut cblock[(ir * MR + i) * n + jc + jr * nr..][..nr_eff];
                let trow = &tile[i * nr..i * nr + nr_eff];
                let xrow = match (last_strip, epi) {
                    (true, Epilogue::Add(x)) => {
                        Some(&x.as_slice()[gi * n + jc + jr * nr..][..nr_eff])
                    }
                    _ => None,
                };
                // One tight loop per writeback mode — no per-element
                // branching.
                match (first_strip, xrow) {
                    (true, None) => crow.copy_from_slice(trow),
                    (false, None) => {
                        for (cj, tj) in crow.iter_mut().zip(trow) {
                            *cj += tj;
                        }
                    }
                    (true, Some(x)) => {
                        for ((cj, tj), xj) in crow.iter_mut().zip(trow).zip(x) {
                            *cj = tj + xj;
                        }
                    }
                    (false, Some(x)) => {
                        for ((cj, tj), xj) in crow.iter_mut().zip(trow).zip(x) {
                            *cj = (*cj + tj) + xj;
                        }
                    }
                }
            }
        }
    }
}

/// The shared blocked kernel. With `overwrite` the prior contents of `c`
/// are ignored (the first rank update writes); without, strips accumulate
/// into what `c` already holds (`C += A·B`, the gradient shape). `pro_b`
/// maps B elements during the per-call `pack_b` (view operands only —
/// persistent packs are packed plain).
#[allow(clippy::too_many_arguments)]
fn gemm_core(
    m: usize,
    n: usize,
    k: usize,
    a: View<'_>,
    pro: &Prologue<'_>,
    b: BOperand<'_>,
    pro_b: &Prologue<'_>,
    epi: &Epilogue<'_>,
    c: &mut [f32],
    overwrite: bool,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // A·B is all-zero; honour the contract anyway.
        if overwrite {
            c.fill(0.0);
        }
        if let Epilogue::Add(x) = epi {
            for (cj, xj) in c.iter_mut().zip(x.as_slice()) {
                *cj += xj;
            }
        }
        return;
    }
    let nr = match b {
        BOperand::Packed(pm) => {
            assert_eq!(pm.k, k, "packed inner dimension mismatch");
            assert_eq!(pm.n, n, "packed output dimension mismatch");
            assert!(
                matches!(pro_b, Prologue::None),
                "B prologues require a view operand (packs are plain)"
            );
            pm.nr
        }
        BOperand::View(_) => kernel_nr(),
    };
    let n_blocks = m.div_ceil(MC);
    let parallel = m.saturating_mul(n).saturating_mul(k) >= PAR_GEMM_FLOPS
        && n_blocks > 1
        && rayon::current_num_threads() > 1;
    for jc in (0..n).step_by(NC) {
        let nc = (n - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            let first = overwrite && pc == 0;
            let last = pc + kc == k;
            // Pack buffers come from the pool on the calling thread only,
            // keeping workers allocation-free and pool counters
            // deterministic. Persistent packs skip this entirely.
            let mut bscratch: Option<Vec<f32>> = None;
            let bpack: &[f32] = match b {
                BOperand::Packed(pm) => pm.panel(jc, pc, kc),
                BOperand::View(v) => {
                    let mut buf = pool::take_raw(nc.div_ceil(nr) * nr * kc);
                    pack_b(&mut buf, v, pro_b, pc, jc, kc, nc, nr);
                    bscratch = Some(buf);
                    bscratch.as_deref().unwrap()
                }
            };
            // Parallel tasks each need a private A block; the sequential
            // path packs and consumes one block at a time, so a single
            // block's worth of scratch suffices.
            let apack_blocks = if parallel { n_blocks } else { 1 };
            let mut apack = pool::take_raw(apack_blocks * MC * kc);
            if parallel {
                let ascratch = SyncSliceMut::new(&mut apack);
                c.par_chunks_mut(MC * n).enumerate().for_each(|(blk, cblock)| {
                    // Safety: one exclusive range per block index.
                    let ap = unsafe { ascratch.range_mut(blk * MC * kc, MC * kc) };
                    block_update(
                        cblock, n, a, pro, ap, bpack, nr, blk * MC, pc, jc, kc, nc, first,
                        last, epi,
                    );
                });
            } else {
                for (blk, cblock) in c.chunks_mut(MC * n).enumerate() {
                    block_update(
                        cblock, n, a, pro, &mut apack, bpack, nr, blk * MC, pc, jc, kc, nc,
                        first, last, epi,
                    );
                }
            }
            pool::recycle(apack);
            if let Some(buf) = bscratch {
                pool::recycle(buf);
            }
        }
    }
}

/// Blocked GEMM into a fresh pooled output.
fn gemm(m: usize, n: usize, k: usize, a: View<'_>, b: View<'_>) -> Tensor {
    if k == 0 {
        return Tensor::zeros_pooled(m, n);
    }
    // The first rank update writes every element, so the buffer may start
    // with arbitrary recycled contents.
    let mut c = Tensor::uninit_pooled(m, n);
    gemm_core(
        m,
        n,
        k,
        a,
        &Prologue::None,
        BOperand::View(b),
        &Prologue::None,
        &Epilogue::None,
        c.as_mut_slice(),
        true,
    );
    c
}

/// `C = A · B` with `A: (m, k)`, `B: (k, n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    if m * n * k < SMALL_GEMM_FLOPS {
        return small_nn(a, b);
    }
    gemm(
        m,
        n,
        k,
        View { data: a.as_slice(), rs: k, cs: 1 },
        View { data: b.as_slice(), rs: n, cs: 1 },
    )
}

/// `C = A · Bᵀ` with `A: (m, k)`, `B: (n, k)` — the orientation of
/// `dX = dY · Wᵀ` and of attention scores `Q · Kᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    if m * n * k < SMALL_GEMM_FLOPS {
        return small_nt(a, b);
    }
    gemm(
        m,
        n,
        k,
        View { data: a.as_slice(), rs: k, cs: 1 },
        // Bᵀ element (p, j) = B[j, p] = data[j*k + p]: stride swap.
        View { data: b.as_slice(), rs: 1, cs: k },
    )
}

/// `C = Aᵀ · B` with `A: (k, m)`, `B: (k, n)` — the orientation of
/// `dW = Xᵀ · dY` (weight gradients).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "matmul_tn inner dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    if m * n * k < SMALL_GEMM_FLOPS {
        return small_tn(a, b);
    }
    gemm(
        m,
        n,
        k,
        // Aᵀ element (i, p) = A[p, i] = data[p*m + i]: stride swap.
        View { data: a.as_slice(), rs: 1, cs: m },
        View { data: b.as_slice(), rs: n, cs: 1 },
    )
}

// ---- fused / packed entry points (always the blocked kernel) ----

/// `C = pro(A) · B` against a persistent pack, with a fused epilogue:
/// the workhorse of the layer forward (`A` row-major `(m, k)`, `B`'s
/// orientation baked into the pack). No small-size fallback: the cached
/// pack removes the overhead the fallback exists to dodge.
pub fn matmul_fused(a: &Tensor, b: &PackedMat, pro: Prologue<'_>, epi: Epilogue<'_>) -> Tensor {
    assert_eq!(a.cols(), b.k, "matmul_fused inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.n;
    pro.validate(m, k);
    if let Epilogue::Add(x) = &epi {
        assert_eq!(x.shape(), (m, n), "epilogue operand shape mismatch");
    }
    let mut c = if k == 0 { Tensor::zeros_pooled(m, n) } else { Tensor::uninit_pooled(m, n) };
    gemm_core(
        m,
        n,
        k,
        View { data: a.as_slice(), rs: k, cs: 1 },
        &pro,
        BOperand::Packed(b),
        &Prologue::None,
        &epi,
        c.as_mut_slice(),
        true,
    );
    c
}

/// `C += pro(A) · B` against a persistent pack — the `d_normed`
/// accumulation shape of the layer backward, with the A-side elementwise
/// recompute (e.g. the fused SwiGLU-backward `d_up` map) applied during
/// packing. Bit-identical to
/// `c.add_assign_recycle(matmul_fused(a, b, pro, ..))` at every size:
/// below `KC` the single rank update accumulates in the same element
/// order, and past `KC` the fallback literally is that composition.
/// (Packed GEMMs are always blocked, so past-`KC` shapes associate the
/// k-sum per `KC`-strip — like any blocked GEMM at that depth.)
pub fn matmul_fused_acc(c: &mut Tensor, a: &Tensor, b: &PackedMat, pro: Prologue<'_>) {
    assert_eq!(a.cols(), b.k, "matmul_fused_acc inner dimension mismatch");
    let (m, k) = a.shape();
    assert_eq!(c.shape(), (m, b.n), "accumulator shape mismatch");
    pro.validate(m, k);
    if k > KC {
        let t = matmul_fused(a, b, pro, Epilogue::None);
        c.add_assign_recycle(t);
        return;
    }
    let n = b.n;
    gemm_core(
        m,
        n,
        k,
        View { data: a.as_slice(), rs: k, cs: 1 },
        &pro,
        BOperand::Packed(b),
        &Prologue::None,
        &Epilogue::None,
        c.as_mut_slice(),
        false,
    );
}

/// `C += pro(Aᵀ) · pro_b(B)` with `A: (k, m)`, `B: (k, n)` unpacked — the
/// weight gradient accumulation `dW += Xᵀ · dY`, with the activation
/// recompute (RMSNorm / SwiGLU) fused into the A pack and, when the
/// upstream gradient itself is a cheap elementwise map (the fused
/// SwiGLU-backward `d_gate`/`d_up`), that map fused into the B pack.
/// `pro_b` indexes `(token, feature) = (k-row, column)`, i.e. the `Rows`
/// variants with B's own row-major layout. Bit-identical to the
/// separate-pass composition (materialised prologues + `matmul_tn` +
/// `add_assign`) at **every** size: below `KC` the single rank update
/// accumulates into `c` in the same element order, and past `KC` the
/// fallback literally *is* that composition — it materialises the mapped
/// operands and reuses the thresholded [`matmul_tn`], so the k-summation
/// associates exactly as the unfused path would (small loop or blocked,
/// whichever the shape picks).
pub fn matmul_tn_acc(c: &mut Tensor, a: &Tensor, b: &Tensor, pro: Prologue<'_>, pro_b: Prologue<'_>) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn_acc inner dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    assert_eq!(c.shape(), (m, n), "accumulator shape mismatch");
    pro.validate(m, k);
    pro_b.validate(k, n);
    if k > KC {
        // a'[r, c] = pro(a[r, c]) in view coords (i = column, p = row) —
        // exactly what rmsnorm/swiglu forward produce; likewise
        // b'[r, c] = pro_b(b[r, c]) with (token, feature) = (r, c).
        let mapped_a = match &pro {
            Prologue::None => None,
            _ => {
                let mut mapped = Tensor::uninit_pooled(k, m);
                for r in 0..k {
                    let (src, dst) = (a.row(r), mapped.row_mut(r));
                    for (c2, (d, &s)) in dst.iter_mut().zip(src).enumerate() {
                        *d = pro.apply(s, c2, r);
                    }
                }
                Some(mapped)
            }
        };
        let mapped_b = match &pro_b {
            Prologue::None => None,
            _ => {
                let mut mapped = Tensor::uninit_pooled(k, n);
                for r in 0..k {
                    let (src, dst) = (b.row(r), mapped.row_mut(r));
                    for (c2, (d, &s)) in dst.iter_mut().zip(src).enumerate() {
                        *d = pro_b.apply(s, r, c2);
                    }
                }
                Some(mapped)
            }
        };
        let t = matmul_tn(mapped_a.as_ref().unwrap_or(a), mapped_b.as_ref().unwrap_or(b));
        if let Some(ma) = mapped_a {
            ma.recycle();
        }
        if let Some(mb) = mapped_b {
            mb.recycle();
        }
        c.add_assign_recycle(t);
        return;
    }
    let at = View { data: a.as_slice(), rs: 1, cs: m };
    let bv = View { data: b.as_slice(), rs: n, cs: 1 };
    gemm_core(m, n, k, at, &pro, BOperand::View(bv), &pro_b, &Epilogue::None, c.as_mut_slice(), false);
}

// ---- direct loops for executor-scale (tiny) unpacked matrices ----

fn small_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros_pooled(m, n);
    let bs = b.as_slice();
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = c.row_mut(i);
        for (kk, &aik) in a_row.iter().enumerate().take(k) {
            let b_row = &bs[kk * n..(kk + 1) * n];
            for (o, bb) in out_row.iter_mut().zip(b_row) {
                *o += aik * bb;
            }
        }
    }
    c
}

fn small_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = a.shape();
    let n = b.rows();
    let mut c = Tensor::uninit_pooled(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = c.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    c
}

fn small_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros_pooled(m, n);
    let bs = b.as_slice();
    let cs = c.as_mut_slice();
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = &bs[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate().take(m) {
            let out_row = &mut cs[i * n..(i + 1) * n];
            for (o, bb) in out_row.iter_mut().zip(b_row) {
                *o += aki * bb;
            }
        }
    }
    c
}

// ---- chunk-sized strided tile GEMM (the attention kernels' entry) ----

/// Read-only strided operand view for [`gemm_tile`]: element `(i, j)` is
/// `data[i * rs + j * cs]`. Transposition is a stride swap, exactly like
/// the internal blocked-kernel views — this is the public face attention
/// uses to aim head bands of `Q`/`K`/`V`/`dO` (and score/probability
/// scratch) at the micro-kernel without copying.
#[derive(Clone, Copy)]
pub struct TileView<'a> {
    pub data: &'a [f32],
    pub rs: usize,
    pub cs: usize,
}

/// Writeback mode of [`gemm_tile`].
#[derive(Clone, Copy)]
pub enum TileWrite {
    /// `C = T`.
    Assign,
    /// `C += T` — the `dQ`/`dK`/`dV`/`O`-accumulator shapes.
    Accumulate,
    /// `C = T · scale`, with the causal mask folded into the writeback:
    /// entry `(i, j)` whose global key position `kv_offset + j` exceeds its
    /// global query position `q_base + i` becomes `-inf` — the score-tile
    /// epilogue, producing a dense *masked* score tile in one pass.
    ScaledCausal { scale: f32, q_base: usize, kv_offset: usize },
}

/// Pack-scratch length [`gemm_tile`] needs for an `m×n×k` tile, sized for
/// the widest micro-kernel so one buffer serves both `SLIMPIPE_GEMM_NR`
/// regimes.
pub fn gemm_tile_scratch_len(m: usize, n: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k + n.div_ceil(NR_WIDE) * NR_WIDE * k
}

/// Chunk-sized strided GEMM through the shared register micro-kernel:
/// `C (op)= A·B` with strided operand views, a strided C (row stride
/// `c_rs`), and the causal score mask available as a writeback epilogue.
///
/// This is the blocked kernel stripped to what attention tiles need: no
/// `NC`/`KC` panel machinery (tiles are chunk-sized by construction —
/// `k ≤ KC` is asserted, one rank update per element), no parallel
/// dispatch (the *caller's* task fan-out is the parallelism), and no pool
/// traffic — pack scratch comes from the caller
/// ([`gemm_tile_scratch_len`]), so attention workers keep the
/// workers-never-touch-the-pool discipline. Each C element accumulates its
/// k-chain in ascending order inside one micro-tile, so results are
/// bit-identical across `SLIMPIPE_GEMM_NR` widths and thread counts.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile(
    m: usize,
    n: usize,
    k: usize,
    a: TileView<'_>,
    b: TileView<'_>,
    c: &mut [f32],
    c_rs: usize,
    mode: TileWrite,
    scratch: &mut [f32],
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(k <= KC, "gemm_tile is a single rank update (k ≤ {KC})");
    assert!(c_rs >= n, "gemm_tile C row stride below row width");
    assert!(c.len() >= (m - 1) * c_rs + n, "gemm_tile C slice too short");
    let nr = kernel_nr();
    let a_slivers = m.div_ceil(MR);
    let b_slivers = n.div_ceil(nr);
    let (apack, rest) = scratch.split_at_mut(a_slivers * MR * k);
    let bpack = &mut rest[..b_slivers * nr * k];
    pack_a(apack, View { data: a.data, rs: a.rs, cs: a.cs }, &Prologue::None, 0, 0, m, k);
    pack_b(bpack, View { data: b.data, rs: b.rs, cs: b.cs }, &Prologue::None, 0, 0, k, n, nr);
    let simd = wide_simd_available();
    let mut tile8 = [0.0f32; MR * NR_NARROW];
    let mut tile16 = [0.0f32; MR * NR_WIDE];
    for jr in 0..b_slivers {
        let nr_eff = (n - jr * nr).min(nr);
        let bsl = &bpack[jr * k * nr..][..k * nr];
        for ir in 0..a_slivers {
            let mr_eff = (m - ir * MR).min(MR);
            let asl = &apack[ir * k * MR..][..k * MR];
            let tile: &[f32] = if nr == NR_WIDE {
                micro_kernel16(k, asl, bsl, &mut tile16, simd);
                &tile16
            } else {
                micro_kernel8(k, asl, bsl, &mut tile8);
                &tile8
            };
            for i in 0..mr_eff {
                let gi = ir * MR + i;
                let crow = &mut c[gi * c_rs + jr * nr..][..nr_eff];
                let trow = &tile[i * nr..i * nr + nr_eff];
                match mode {
                    TileWrite::Assign => crow.copy_from_slice(trow),
                    TileWrite::Accumulate => {
                        for (cj, tj) in crow.iter_mut().zip(trow) {
                            *cj += tj;
                        }
                    }
                    TileWrite::ScaledCausal { scale, q_base, kv_offset } => {
                        // Keys at global positions ≤ the row's query
                        // position are visible; the rest of the row is
                        // masked to -inf.
                        let vis = (q_base + gi + 1)
                            .saturating_sub(kv_offset + jr * nr)
                            .min(nr_eff);
                        for (cj, tj) in crow[..vis].iter_mut().zip(trow) {
                            *cj = tj * scale;
                        }
                        crow[vis..].fill(f32::NEG_INFINITY);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_uniform;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(i, kk) * b.at(kk, j);
                }
                *c.at_mut(i, j) = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = seeded_uniform(17, 13, 1);
        let b = seeded_uniform(13, 9, 2);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn nt_is_b_transposed() {
        let a = seeded_uniform(11, 7, 3);
        let b = seeded_uniform(5, 7, 4);
        let c = matmul_nt(&a, &b);
        assert!(c.max_abs_diff(&matmul(&a, &b.transposed())) < 1e-4);
    }

    #[test]
    fn tn_is_a_transposed() {
        let a = seeded_uniform(7, 11, 5);
        let b = seeded_uniform(7, 5, 6);
        let c = matmul_tn(&a, &b);
        assert!(c.max_abs_diff(&matmul(&a.transposed(), &b)) < 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let a = seeded_uniform(6, 6, 7);
        let mut eye = Tensor::zeros(6, 6);
        for i in 0..6 {
            *eye.at_mut(i, i) = 1.0;
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn block_boundary_sizes() {
        // Exercise sizes around the parallel block boundary.
        for m in [1usize, 7, 8, 9, 16, 17] {
            let a = seeded_uniform(m, 3, m as u64);
            let b = seeded_uniform(3, 2, 100 + m as u64);
            assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4, "m={m}");
        }
    }

    /// Sizes that force the blocked path and straddle every tile edge:
    /// exact multiples, one-off remainders, and primes.
    #[test]
    fn tiled_path_matches_naive_across_tile_edges() {
        for &(m, k, n) in &[
            (MC, KC, NC.min(128)),          // exact tile multiples
            (MC + 1, KC + 1, 65),           // one past each boundary
            (127, 131, 67),                 // primes
            (MR, 1 << 15, MR),              // deep k, minimal m/n
            (3 * MC + 5, KC / 2 + 3, 96),   // mixed remainders
        ] {
            let a = seeded_uniform(m, k, (m * k) as u64);
            let b = seeded_uniform(k, n, (k * n + 1) as u64);
            assert!(
                m * n * k >= SMALL_GEMM_FLOPS,
                "({m},{k},{n}) must exercise the blocked path"
            );
            let got = matmul(&a, &b);
            let want = naive(&a, &b);
            // Tolerance scales with k (different summation order).
            let tol = 1e-6 * (k as f32).sqrt() * 8.0;
            assert!(
                got.max_abs_diff(&want) < tol,
                "({m},{k},{n}): diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    /// The blocked kernel must agree across orientations too.
    #[test]
    fn tiled_orientations_agree() {
        let (m, k, n) = (100, 150, 90);
        let a = seeded_uniform(m, k, 41);
        let b = seeded_uniform(k, n, 42);
        let c = matmul(&a, &b);
        assert!(matmul_nt(&a, &b.transposed()).max_abs_diff(&c) < 1e-4);
        assert!(matmul_tn(&a.transposed(), &b).max_abs_diff(&c) < 1e-4);
    }

    /// Forced multi-thread execution must be bit-identical to sequential:
    /// each C element's accumulation order is fixed by the pc-loop, not by
    /// thread interleaving.
    #[test]
    fn parallel_execution_is_bit_deterministic() {
        let a = seeded_uniform(200, 300, 50);
        let b = seeded_uniform(300, 110, 51);
        let seq = rayon::with_num_threads(1, || matmul(&a, &b));
        let par = rayon::with_num_threads(4, || matmul(&a, &b));
        assert_eq!(seq, par);
    }

    /// Both micro-kernel widths produce the same bits: the per-element
    /// k-accumulation order is independent of the column tiling.
    #[test]
    fn kernel_widths_are_bit_identical() {
        let a = seeded_uniform(70, 130, 60);
        let b = seeded_uniform(130, 90, 61);
        let narrow = with_kernel_nr(8, || matmul(&a, &b));
        let wide = with_kernel_nr(16, || matmul(&a, &b));
        assert_eq!(narrow, wide);
    }

    /// The persistent pack is just a relayout: packed GEMMs must equal the
    /// unpacked path bit-for-bit in both orientations and at both widths —
    /// including **tiny** shapes, where the packed path takes the blocked
    /// kernel while the unpacked path uses the small-size fallback (the
    /// stale-threshold regression this guards).
    #[test]
    fn packed_matches_unpacked_bitwise_at_every_size() {
        for nr in [8usize, 16] {
            with_kernel_nr(nr, || {
                for &(m, k, n) in &[
                    (1usize, 1usize, 1usize),
                    (2, 3, 4),
                    (5, 8, 16),
                    (16, 32, 24),       // executor scale
                    (17, 33, 23),       // ragged executor scale
                    (100, 150, 90),     // blocked on both paths
                ] {
                    let a = seeded_uniform(m, k, (m * k + nr) as u64);
                    let w = seeded_uniform(k, n, (k * n + nr) as u64);
                    let packed = PackedMat::pack_nn(&w);
                    let got = matmul_fused(&a, &packed, Prologue::None, Epilogue::None);
                    assert_eq!(got, matmul(&a, &w), "nn ({m},{k},{n}) nr={nr}");

                    let wt = seeded_uniform(n, k, (n * k + 3) as u64);
                    let packed_t = PackedMat::pack_nt(&wt);
                    let got = matmul_fused(&a, &packed_t, Prologue::None, Epilogue::None);
                    assert_eq!(got, matmul_nt(&a, &wt), "nt ({m},{k},{n}) nr={nr}");
                }
            });
        }
    }

    /// In-place packed axpy must equal a fresh pack of the updated weight.
    #[test]
    fn packed_axpy_tracks_fresh_pack_bitwise() {
        let w = seeded_uniform(33, 70, 77);
        let g = seeded_uniform(33, 70, 78);
        let mut pw = PackedWeight::new(w.clone());
        pw.axpy(-0.05, &g);
        let mut fresh = w.clone();
        fresh.axpy(-0.05, &g);
        assert_eq!(pw.tensor(), &fresh);
        let a = seeded_uniform(19, 33, 79);
        assert_eq!(
            matmul_fused(&a, pw.nn(), Prologue::None, Epilogue::None),
            matmul_fused(&a, PackedWeight::new(fresh.clone()).nn(), Prologue::None, Epilogue::None),
            "nn pack diverged from fresh pack after axpy"
        );
        let d = seeded_uniform(19, 70, 80);
        assert_eq!(
            matmul_fused(&d, pw.nt(), Prologue::None, Epilogue::None),
            matmul_fused(&d, PackedWeight::new(fresh).nt(), Prologue::None, Epilogue::None),
            "nt pack diverged from fresh pack after axpy"
        );
    }

    /// The fused accumulate entry points must be bit-identical to their
    /// separate-pass compositions at **every** size — including the
    /// `k > KC` window whose `m·n·k` sits below the small-GEMM threshold
    /// (n = 7 keeps `33·7·549` under it), where the unfused comparator
    /// takes the single-chain small loop and the fallback must follow it.
    #[test]
    fn acc_variants_match_separate_add_bitwise() {
        for k in [7usize, 40, KC, KC + 37] {
            let a = seeded_uniform(k, 33, k as u64);
            let b = seeded_uniform(k, 7, 1 + k as u64);
            let mut fused = seeded_uniform(33, 7, 2);
            let mut unfused = fused.clone();
            matmul_tn_acc(&mut fused, &a, &b, Prologue::None, Prologue::None);
            unfused.add_assign_recycle(matmul_tn(&a, &b));
            assert_eq!(fused, unfused, "tn_acc k={k}");

            // With a fused RMSNorm prologue: the comparator materialises
            // the norm, exactly as the executor's PR 3 path did.
            let gain: Vec<f32> = (0..33).map(|i| 0.9 + 0.01 * i as f32).collect();
            let inv = crate::rmsnorm::inv_rms(&a);
            let mut f2 = seeded_uniform(33, 7, 3);
            let mut u2 = f2.clone();
            matmul_tn_acc(&mut f2, &a, &b, Prologue::NormCols { inv: &inv, gain: &gain }, Prologue::None);
            pool::recycle(inv);
            let normed = crate::rmsnorm::forward(&a, &gain);
            u2.add_assign_recycle(matmul_tn(&normed, &b));
            normed.recycle();
            assert_eq!(f2, u2, "tn_acc norm k={k}");

            // Packed accumulate vs its documented comparator (packed
            // temp + add): exact at any size.
            let w = seeded_uniform(21, k, 3 + k as u64);
            let d = seeded_uniform(14, k, 4 + k as u64);
            let packed = PackedMat::pack_nt(&w);
            let mut facc = seeded_uniform(14, 21, 5);
            let mut uacc = facc.clone();
            matmul_fused_acc(&mut facc, &d, &packed, Prologue::None);
            uacc.add_assign_recycle(matmul_fused(&d, &packed, Prologue::None, Epilogue::None));
            assert_eq!(facc, uacc, "fused_acc k={k}");
        }
    }

    /// Weight-pack accounting: packs count, in-place axpy does not.
    #[test]
    fn pack_counters_track_packs_not_updates() {
        let before = weight_packs_total();
        let w = seeded_uniform(16, 16, 90);
        let mut pw = PackedWeight::new(w); // nn + nt
        assert_eq!(weight_packs_total() - before, 2);
        begin_pack_epoch();
        let g = seeded_uniform(16, 16, 91);
        pw.axpy(-0.1, &g);
        let a = seeded_uniform(4, 16, 92);
        let _ = matmul_fused(&a, pw.nn(), Prologue::None, Epilogue::None);
        assert_eq!(gemm_packs_per_step(), 0, "updates and GEMMs must not re-pack");
        let _clone = pw.clone(); // clones re-pack by design
        assert_eq!(gemm_packs_per_step(), 2);
    }
}
