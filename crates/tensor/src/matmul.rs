//! Rayon-parallel GEMM in the three orientations the backward pass needs.
//!
//! Row-parallel over the output: each rayon task owns a disjoint block of
//! output rows, so the kernels are data-race free by construction. The inner
//! loops are laid out `i-k-j` so the innermost access pattern is sequential
//! over both operands (good for the hardware prefetcher — see the Rust
//! Performance Book guidance on cache-friendly layouts).

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Minimum rows per rayon task; below this, parallel overhead dominates.
const PAR_ROW_BLOCK: usize = 8;

/// `C = A · B` with `A: (m, k)`, `B: (k, n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros(m, n);
    let bs = b.as_slice();
    c.as_mut_slice()
        .par_chunks_mut(n * PAR_ROW_BLOCK)
        .enumerate()
        .for_each(|(blk, rows_out)| {
            let row0 = blk * PAR_ROW_BLOCK;
            for (li, out_row) in rows_out.chunks_mut(n).enumerate() {
                let i = row0 + li;
                let a_row = a.row(i);
                for kk in 0..k {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &bs[kk * n..(kk + 1) * n];
                    for (o, bb) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bb;
                    }
                }
            }
        });
    c
}

/// `C = A · Bᵀ` with `A: (m, k)`, `B: (n, k)` — the orientation of
/// `dX = dY · Wᵀ` and of attention scores `Q · Kᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Tensor::zeros(m, n);
    c.as_mut_slice()
        .par_chunks_mut(n * PAR_ROW_BLOCK)
        .enumerate()
        .for_each(|(blk, rows_out)| {
            let row0 = blk * PAR_ROW_BLOCK;
            for (li, out_row) in rows_out.chunks_mut(n).enumerate() {
                let i = row0 + li;
                let a_row = a.row(i);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = b.row(j);
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a_row[kk] * b_row[kk];
                    }
                    *o = acc;
                }
            }
        });
    c
}

/// `C = Aᵀ · B` with `A: (k, m)`, `B: (k, n)` — the orientation of
/// `dW = Xᵀ · dY` (weight gradients).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "matmul_tn inner dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros(m, n);
    let bs = b.as_slice();
    c.as_mut_slice()
        .par_chunks_mut(n * PAR_ROW_BLOCK)
        .enumerate()
        .for_each(|(blk, rows_out)| {
            let row0 = blk * PAR_ROW_BLOCK;
            for (li, out_row) in rows_out.chunks_mut(n).enumerate() {
                let i = row0 + li;
                for kk in 0..k {
                    let aki = a.at(kk, i);
                    if aki == 0.0 {
                        continue;
                    }
                    let b_row = &bs[kk * n..(kk + 1) * n];
                    for (o, bb) in out_row.iter_mut().zip(b_row) {
                        *o += aki * bb;
                    }
                }
            }
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_uniform;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(i, kk) * b.at(kk, j);
                }
                *c.at_mut(i, j) = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = seeded_uniform(17, 13, 1);
        let b = seeded_uniform(13, 9, 2);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn nt_is_b_transposed() {
        let a = seeded_uniform(11, 7, 3);
        let b = seeded_uniform(5, 7, 4);
        let c = matmul_nt(&a, &b);
        assert!(c.max_abs_diff(&matmul(&a, &b.transposed())) < 1e-4);
    }

    #[test]
    fn tn_is_a_transposed() {
        let a = seeded_uniform(7, 11, 5);
        let b = seeded_uniform(7, 5, 6);
        let c = matmul_tn(&a, &b);
        assert!(c.max_abs_diff(&matmul(&a.transposed(), &b)) < 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let a = seeded_uniform(6, 6, 7);
        let mut eye = Tensor::zeros(6, 6);
        for i in 0..6 {
            *eye.at_mut(i, i) = 1.0;
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn block_boundary_sizes() {
        // Exercise sizes around the rayon block boundary.
        for m in [1usize, 7, 8, 9, 16, 17] {
            let a = seeded_uniform(m, 3, m as u64);
            let b = seeded_uniform(3, 2, 100 + m as u64);
            assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4, "m={m}");
        }
    }
}
