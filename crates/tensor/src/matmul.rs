//! Cache-blocked, packed, register-tiled GEMM — one kernel shared by the
//! three orientations the backward pass needs.
//!
//! Layout follows the classic GotoBLAS/BLIS decomposition: `NC`-wide column
//! panels × `KC`-deep rank updates, with B packed once per `(jc, pc)` panel
//! into `NR`-column slivers and A packed per `MC`-row block into `MR`-row
//! slivers, both k-major and zero-padded to full sliver width. The
//! innermost `MR×NR` micro-kernel accumulates into a register tile over
//! fixed-size array chunks, so LLVM keeps the accumulators in vector
//! registers and the inner loop autovectorizes — no data-dependent
//! branches (the old `== 0.0` skip mispredicted on dense data and is gone).
//!
//! Orientations are expressed as strided *views* feeding the pack step:
//! `A·B`, `A·Bᵀ` (`dX = dY·Wᵀ`, attention scores `Q·Kᵀ`) and `Aᵀ·B`
//! (`dW = Xᵀ·dY`) all run the identical blocked kernel. Work is
//! parallelized over `MC`-row output blocks (disjoint row ranges of C),
//! dispatched as row-block tasks onto the persistent worker pool behind the
//! `rayon` shim — no threads are spawned per call — and every buffer — the
//! output, the pack panels, the per-task pack blocks — comes from the
//! [`crate::pool`], so steady-state calls allocate nothing. Each C
//! element's accumulation order is fixed by the `pc` loop regardless of
//! which worker runs which row block, so results are bit-identical across
//! thread counts.
//!
//! Matrices smaller than [`SMALL_GEMM_FLOPS`] take a branch-free
//! orientation-specific loop instead: at executor scale (hidden ≈ 32) the
//! packing overhead would dominate.

use crate::pool;
use crate::shared::SyncSliceMut;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Micro-tile rows (register blocking).
const MR: usize = 8;
/// Micro-tile columns (one or two SIMD vectors wide).
const NR: usize = 8;
/// Rows per parallel task block (multiple of `MR`; A block is MC×KC ≈ 64 KiB).
const MC: usize = 64;
/// Rank-update depth (B sliver stays L1-resident: KC×NR ≈ 16 KiB; k ≤ 512
/// runs as a single rank update so each C tile is written once).
const KC: usize = 512;
/// Column panel width (B panel ≈ KC×NC ≈ 2 MiB, L2/L3-resident).
const NC: usize = 2048;

/// Below this `m·n·k` product the blocked kernel's packing overhead
/// dominates and a direct loop wins.
const SMALL_GEMM_FLOPS: usize = 1 << 18;

/// Work (in multiply-adds) under which a GEMM stays on the calling thread.
const PAR_GEMM_FLOPS: usize = 1 << 21;

/// Read-only strided matrix view: element `(i, j)` is
/// `data[i * rs + j * cs]`. Transposition is a stride swap.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl View<'_> {
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// Pack `mc×kc` of A (from `(i0, p0)`) into `MR`-row k-major slivers,
/// zero-padding the ragged last sliver.
fn pack_a(dst: &mut [f32], a: View<'_>, i0: usize, p0: usize, mc: usize, kc: usize) {
    let slivers = mc.div_ceil(MR);
    for s in 0..slivers {
        let rows = (mc - s * MR).min(MR);
        let base = s * kc * MR;
        if a.cs == 1 && rows == MR {
            // Row-major A, full sliver: copy rows through slices so the
            // inner loop is contiguous loads with hoisted bounds checks.
            for r in 0..MR {
                let src = &a.data[(i0 + s * MR + r) * a.rs + p0..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    dst[base + p * MR + r] = v;
                }
            }
        } else {
            for p in 0..kc {
                let d = &mut dst[base + p * MR..base + (p + 1) * MR];
                for (r, dr) in d.iter_mut().enumerate() {
                    *dr = if r < rows { a.at(i0 + s * MR + r, p0 + p) } else { 0.0 };
                }
            }
        }
    }
}

/// Pack `kc×nc` of B (from `(p0, j0)`) into `NR`-column k-major slivers,
/// zero-padding the ragged last sliver.
fn pack_b(dst: &mut [f32], b: View<'_>, p0: usize, j0: usize, kc: usize, nc: usize) {
    let slivers = nc.div_ceil(NR);
    for t in 0..slivers {
        let cols = (nc - t * NR).min(NR);
        let base = t * kc * NR;
        if b.cs == 1 && cols == NR {
            for p in 0..kc {
                let src = &b.data[(p0 + p) * b.rs + j0 + t * NR..][..NR];
                dst[base + p * NR..base + (p + 1) * NR].copy_from_slice(src);
            }
        } else {
            for p in 0..kc {
                let d = &mut dst[base + p * NR..base + (p + 1) * NR];
                for (c, dc) in d.iter_mut().enumerate() {
                    *dc = if c < cols { b.at(p0 + p, j0 + t * NR + c) } else { 0.0 };
                }
            }
        }
    }
}

/// `MR×NR` register micro-kernel: `tile = Σ_p a_sliver[p] ⊗ b_sliver[p]`.
#[inline(always)]
fn micro_kernel(kc: usize, a: &[f32], b: &[f32], tile: &mut [f32; MR * NR]) {
    let mut acc = [0.0f32; MR * NR];
    for p in 0..kc {
        // Fixed-size chunks eliminate bounds checks and let LLVM hold the
        // 64 accumulators in vector registers.
        let av: &[f32; MR] = a[p * MR..p * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = b[p * NR..p * NR + NR].try_into().unwrap();
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i * NR + j] += ai * bv[j];
            }
        }
    }
    *tile = acc;
}

/// One `MC`-row block's worth of rank-`kc` update: pack A, run the micro
/// tiles, accumulate into the block's rows of C.
#[allow(clippy::too_many_arguments)]
fn block_update(
    cblock: &mut [f32],
    n: usize,
    a: View<'_>,
    apack: &mut [f32],
    bpack: &[f32],
    i0: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    let mc = cblock.len() / n;
    pack_a(apack, a, i0, pc, mc, kc);
    let mut tile = [0.0f32; MR * NR];
    for jr in 0..nc.div_ceil(NR) {
        let nr_eff = (nc - jr * NR).min(NR);
        let bsl = &bpack[jr * kc * NR..][..kc * NR];
        for ir in 0..mc.div_ceil(MR) {
            let mr_eff = (mc - ir * MR).min(MR);
            let asl = &apack[ir * kc * MR..][..kc * MR];
            micro_kernel(kc, asl, bsl, &mut tile);
            for i in 0..mr_eff {
                let crow = &mut cblock[(ir * MR + i) * n + jc + jr * NR..][..nr_eff];
                for (j, cj) in crow.iter_mut().enumerate() {
                    *cj += tile[i * NR + j];
                }
            }
        }
    }
}

/// The shared blocked kernel: `C += A_view · B_view` into a zeroed pooled C.
fn gemm(m: usize, n: usize, k: usize, a: View<'_>, b: View<'_>) -> Tensor {
    let mut c = Tensor::zeros_pooled(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let n_blocks = m.div_ceil(MC);
    let parallel = m.saturating_mul(n).saturating_mul(k) >= PAR_GEMM_FLOPS
        && n_blocks > 1
        && rayon::current_num_threads() > 1;
    for jc in (0..n).step_by(NC) {
        let nc = (n - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            // Pack buffers come from the pool on the calling thread only,
            // keeping workers allocation-free and pool counters
            // deterministic.
            let mut bpack = pool::take_raw(nc.div_ceil(NR) * NR * kc);
            pack_b(&mut bpack, b, pc, jc, kc, nc);
            // Parallel tasks each need a private A block; the sequential
            // path packs and consumes one block at a time, so a single
            // block's worth of scratch suffices.
            let apack_blocks = if parallel { n_blocks } else { 1 };
            let mut apack = pool::take_raw(apack_blocks * MC * kc);
            if parallel {
                let ascratch = SyncSliceMut::new(&mut apack);
                c.as_mut_slice().par_chunks_mut(MC * n).enumerate().for_each(
                    |(blk, cblock)| {
                        // Safety: one exclusive range per block index.
                        let ap = unsafe { ascratch.range_mut(blk * MC * kc, MC * kc) };
                        block_update(cblock, n, a, ap, &bpack, blk * MC, pc, jc, kc, nc);
                    },
                );
            } else {
                for (blk, cblock) in c.as_mut_slice().chunks_mut(MC * n).enumerate() {
                    block_update(cblock, n, a, &mut apack, &bpack, blk * MC, pc, jc, kc, nc);
                }
            }
            pool::recycle(apack);
            pool::recycle(bpack);
        }
    }
    c
}

/// `C = A · B` with `A: (m, k)`, `B: (k, n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    if m * n * k < SMALL_GEMM_FLOPS {
        return small_nn(a, b);
    }
    gemm(
        m,
        n,
        k,
        View { data: a.as_slice(), rs: k, cs: 1 },
        View { data: b.as_slice(), rs: n, cs: 1 },
    )
}

/// `C = A · Bᵀ` with `A: (m, k)`, `B: (n, k)` — the orientation of
/// `dX = dY · Wᵀ` and of attention scores `Q · Kᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    if m * n * k < SMALL_GEMM_FLOPS {
        return small_nt(a, b);
    }
    gemm(
        m,
        n,
        k,
        View { data: a.as_slice(), rs: k, cs: 1 },
        // Bᵀ element (p, j) = B[j, p] = data[j*k + p]: stride swap.
        View { data: b.as_slice(), rs: 1, cs: k },
    )
}

/// `C = Aᵀ · B` with `A: (k, m)`, `B: (k, n)` — the orientation of
/// `dW = Xᵀ · dY` (weight gradients).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "matmul_tn inner dimension mismatch");
    let (k, m) = a.shape();
    let n = b.cols();
    if m * n * k < SMALL_GEMM_FLOPS {
        return small_tn(a, b);
    }
    gemm(
        m,
        n,
        k,
        // Aᵀ element (i, p) = A[p, i] = data[p*m + i]: stride swap.
        View { data: a.as_slice(), rs: 1, cs: m },
        View { data: b.as_slice(), rs: n, cs: 1 },
    )
}

// ---- direct loops for executor-scale (tiny) matrices ----

fn small_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros_pooled(m, n);
    let bs = b.as_slice();
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = c.row_mut(i);
        for (kk, &aik) in a_row.iter().enumerate().take(k) {
            let b_row = &bs[kk * n..(kk + 1) * n];
            for (o, bb) in out_row.iter_mut().zip(b_row) {
                *o += aik * bb;
            }
        }
    }
    c
}

fn small_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = a.shape();
    let n = b.rows();
    let mut c = Tensor::uninit_pooled(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = c.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    c
}

fn small_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros_pooled(m, n);
    let bs = b.as_slice();
    let cs = c.as_mut_slice();
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = &bs[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate().take(m) {
            let out_row = &mut cs[i * n..(i + 1) * n];
            for (o, bb) in out_row.iter_mut().zip(b_row) {
                *o += aki * bb;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_uniform;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(i, kk) * b.at(kk, j);
                }
                *c.at_mut(i, j) = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = seeded_uniform(17, 13, 1);
        let b = seeded_uniform(13, 9, 2);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn nt_is_b_transposed() {
        let a = seeded_uniform(11, 7, 3);
        let b = seeded_uniform(5, 7, 4);
        let c = matmul_nt(&a, &b);
        assert!(c.max_abs_diff(&matmul(&a, &b.transposed())) < 1e-4);
    }

    #[test]
    fn tn_is_a_transposed() {
        let a = seeded_uniform(7, 11, 5);
        let b = seeded_uniform(7, 5, 6);
        let c = matmul_tn(&a, &b);
        assert!(c.max_abs_diff(&matmul(&a.transposed(), &b)) < 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let a = seeded_uniform(6, 6, 7);
        let mut eye = Tensor::zeros(6, 6);
        for i in 0..6 {
            *eye.at_mut(i, i) = 1.0;
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn block_boundary_sizes() {
        // Exercise sizes around the parallel block boundary.
        for m in [1usize, 7, 8, 9, 16, 17] {
            let a = seeded_uniform(m, 3, m as u64);
            let b = seeded_uniform(3, 2, 100 + m as u64);
            assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4, "m={m}");
        }
    }

    /// Sizes that force the blocked path and straddle every tile edge:
    /// exact multiples, one-off remainders, and primes.
    #[test]
    fn tiled_path_matches_naive_across_tile_edges() {
        for &(m, k, n) in &[
            (MC, KC, NC.min(128)),          // exact tile multiples
            (MC + 1, KC + 1, 65),           // one past each boundary
            (127, 131, 67),                 // primes
            (MR, 1 << 15, MR),              // deep k, minimal m/n
            (3 * MC + 5, KC / 2 + 3, 96),   // mixed remainders
        ] {
            let a = seeded_uniform(m, k, (m * k) as u64);
            let b = seeded_uniform(k, n, (k * n + 1) as u64);
            assert!(
                m * n * k >= SMALL_GEMM_FLOPS,
                "({m},{k},{n}) must exercise the blocked path"
            );
            let got = matmul(&a, &b);
            let want = naive(&a, &b);
            // Tolerance scales with k (different summation order).
            let tol = 1e-6 * (k as f32).sqrt() * 8.0;
            assert!(
                got.max_abs_diff(&want) < tol,
                "({m},{k},{n}): diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    /// The blocked kernel must agree across orientations too.
    #[test]
    fn tiled_orientations_agree() {
        let (m, k, n) = (100, 150, 90);
        let a = seeded_uniform(m, k, 41);
        let b = seeded_uniform(k, n, 42);
        let c = matmul(&a, &b);
        assert!(matmul_nt(&a, &b.transposed()).max_abs_diff(&c) < 1e-4);
        assert!(matmul_tn(&a.transposed(), &b).max_abs_diff(&c) < 1e-4);
    }

    /// Forced multi-thread execution must be bit-identical to sequential:
    /// each C element's accumulation order is fixed by the pc-loop, not by
    /// thread interleaving.
    #[test]
    fn parallel_execution_is_bit_deterministic() {
        let a = seeded_uniform(200, 300, 50);
        let b = seeded_uniform(300, 110, 51);
        let seq = rayon::with_num_threads(1, || matmul(&a, &b));
        let par = rayon::with_num_threads(4, || matmul(&a, &b));
        assert_eq!(seq, par);
    }
}
