//! Byte-exact activation accounting — the stand-in for
//! `torch.cuda.max_memory_allocated` used by the paper's Figure 10.
//!
//! Each simulated device owns a [`MemCounter`]; pipeline code registers
//! activation/KV-cache allocations and releases against it, and the peak is
//! read at the end of the run. Counters are cheap atomics so they can be
//! shared across the executor's device threads and its exchange-server
//! threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared current/peak byte counter.
#[derive(Clone, Debug, Default)]
pub struct MemCounter {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    current: AtomicU64,
    peak: AtomicU64,
    allocs: AtomicU64,
}

impl MemCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation of `bytes`.
    pub fn alloc(&self, bytes: u64) {
        let cur = self.inner.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.allocs.fetch_add(1, Ordering::Relaxed);
        // Monotonic max via CAS loop.
        let mut peak = self.inner.peak.load(Ordering::Relaxed);
        while cur > peak {
            match self.inner.peak.compare_exchange_weak(
                peak,
                cur,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    /// Record a release of `bytes`. Releasing more than currently allocated
    /// is a bookkeeping bug and panics in debug builds.
    pub fn free(&self, bytes: u64) {
        let prev = self.inner.current.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "memtrack underflow: freeing {bytes} of {prev}");
    }

    /// Bytes currently registered.
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// High-water mark since creation (or last [`Self::reset_peak`]).
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Number of allocation events — the fragmentation proxy used by the
    /// chunked-KV-cache ablation (§5: slice-sized chunks are "precisely
    /// reused between two adjacent microbatches").
    pub fn alloc_count(&self) -> u64 {
        self.inner.allocs.load(Ordering::Relaxed)
    }

    /// Reset the peak to the current level (start of a measured phase).
    pub fn reset_peak(&self) {
        self.inner
            .peak
            .store(self.inner.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn peak_tracks_high_water_mark() {
        let m = MemCounter::new();
        m.alloc(100);
        m.alloc(50);
        m.free(120);
        m.alloc(10);
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 150);
        assert_eq!(m.alloc_count(), 3);
    }

    #[test]
    fn reset_peak_starts_new_phase() {
        let m = MemCounter::new();
        m.alloc(100);
        m.free(100);
        m.reset_peak();
        m.alloc(30);
        assert_eq!(m.peak(), 30);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let m = MemCounter::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.alloc(3);
                        m.free(3);
                    }
                });
            }
        });
        assert_eq!(m.current(), 0);
        assert!(m.peak() >= 3);
        assert!(m.peak() <= 24);
    }
}
