//! Cross-crate integration: the *real* threaded executor's measured
//! activation bytes must follow the paper's Eq. 1 scaling, and the
//! executor must agree with the analytical model about who saves memory.

use slimpipe::exec::model::ExecConfig;
use slimpipe::exec::schedule::PipelineKind;
use slimpipe::exec::train::run_pipeline;

fn base() -> ExecConfig {
    ExecConfig {
        stages: 2,
        slices: 8,
        microbatches: 4,
        ..ExecConfig::small()
    }
}

#[test]
fn executor_peak_scales_down_with_slice_count() {
    // Eq. 1: accumulation ∝ (n + 2(p-1))/n per device-share; more slices →
    // smaller peak, saturating at 1/p.
    let mut peaks = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let cfg = ExecConfig { slices: n, ..base() };
        let r = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1);
        peaks.push((n, r.peak_act_bytes[0]));
    }
    for w in peaks.windows(2) {
        assert!(
            w[1].1 < w[0].1,
            "peak should shrink with n: {:?}",
            peaks
        );
    }
    // Eq. 1 ratio check between n=2 and n=16 at p=2:
    // (2 + 2)/2 = 2 units vs (16 + 2)/16 = 1.125 units → ratio ≈ 1.78,
    // diluted by the per-slice head stash; accept a broad band.
    let ratio = peaks[0].1 as f64 / peaks[3].1 as f64;
    assert!(ratio > 1.4 && ratio < 2.4, "Eq.1 ratio {ratio}");
}

#[test]
fn executor_scheme_memory_ordering_matches_table2() {
    // SlimPipe < 1F1B < TeraPipe ≈ GPipe in executor-measured bytes.
    let slim = run_pipeline(&base(), PipelineKind::SlimPipe, 1, 0.1);
    let tera = run_pipeline(&base(), PipelineKind::TeraPipe, 1, 0.1);
    let classic_cfg = ExecConfig { slices: 1, ..base() };
    let ofob = run_pipeline(&classic_cfg, PipelineKind::OneFOneB, 1, 0.1);
    let gpipe = run_pipeline(&classic_cfg, PipelineKind::GPipe, 1, 0.1);

    let d0 = |r: &slimpipe::exec::train::RunResult| r.peak_act_bytes[0];
    assert!(d0(&slim) < d0(&ofob), "slim {} < 1f1b {}", d0(&slim), d0(&ofob));
    assert!(d0(&ofob) <= d0(&gpipe), "1f1b {} <= gpipe {}", d0(&ofob), d0(&gpipe));
    assert!(d0(&slim) < d0(&tera), "slim {} < terapipe {}", d0(&slim), d0(&tera));
}

#[test]
fn first_device_holds_more_than_last_under_slimpipe() {
    // §6.2: the first device accumulates 2(p-1) extra slices.
    let r = run_pipeline(&base(), PipelineKind::SlimPipe, 1, 0.1);
    assert!(
        r.peak_act_bytes[0] > r.peak_act_bytes[1],
        "first {} vs last {}",
        r.peak_act_bytes[0],
        r.peak_act_bytes[1]
    );
}

#[test]
fn exchange_and_vocab_parallel_do_not_change_losses() {
    // Feature toggles are pure re-schedulings: same losses either way.
    let plain = run_pipeline(&base(), PipelineKind::SlimPipe, 2, 0.2);
    let full = run_pipeline(
        &ExecConfig { exchange: true, vocab_parallel: true, ..base() },
        PipelineKind::SlimPipe,
        2,
        0.2,
    );
    for (a, b) in plain.losses.iter().zip(&full.losses) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
}
