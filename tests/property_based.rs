//! Property-based tests (proptest) on the core invariants: schedule
//! validity, slicing conservation, exchange balance, and memory accounting.

use proptest::prelude::*;
use slimpipe::core::exchange::{plan_round, steady_round_slices, theta_bound, theta_formula};
use slimpipe::core::memory::measured_act_rel;
use slimpipe::core::slicing::Slicing;
use slimpipe::core::theory::{act_memory_rel, Scheme};
use slimpipe::model::causal_pairs;
use slimpipe::sched::validate;

proptest! {
    /// Any (p, m, n-multiple) SlimPipe schedule validates: complete,
    /// deadlock-free, KV-ordered.
    #[test]
    fn slimpipe_schedules_always_validate(
        p in 1usize..=8,
        m in 1usize..=6,
        mult in 1usize..=4,
    ) {
        let n = p * mult;
        let sched = slimpipe::core::schedule::generate(p, m, n).unwrap();
        prop_assert!(validate(&sched).is_ok());
    }

    /// Interleaved SlimPipe too, for any chunk count.
    #[test]
    fn interleaved_slimpipe_schedules_always_validate(
        p in 1usize..=6,
        v in 1usize..=4,
        m in 1usize..=4,
        mult in 1usize..=3,
    ) {
        let n = p * mult;
        let sched = slimpipe::core::interleaved::generate(p, v, m, n).unwrap();
        prop_assert!(validate(&sched).is_ok());
    }

    /// The baseline generators validate across their whole domains.
    #[test]
    fn baseline_schedules_always_validate(
        p in 1usize..=8,
        m in 1usize..=8,
    ) {
        prop_assert!(validate(&slimpipe::sched::gpipe::generate(p, m).unwrap()).is_ok());
        prop_assert!(validate(&slimpipe::sched::onefoneb::generate(p, m).unwrap()).is_ok());
        let zb = slimpipe::sched::zbv::generate_zbv(
            p, m, slimpipe::sched::zbv::ZbCosts::default()).unwrap();
        prop_assert!(validate(&zb).is_ok());
    }

    /// Slice pair counts always partition the sequence total, uniform or
    /// pair-balanced.
    #[test]
    fn slicing_conserves_pairs(seq_mult in 1u64..=64, n in 1usize..=16) {
        let seq = seq_mult * 16 * n as u64;
        let u = Slicing::uniform(seq, n);
        let total: u128 = (0..n).map(|i| u.pairs(i)).sum();
        prop_assert_eq!(total, causal_pairs(0, seq));
        let b = Slicing::pair_balanced(seq, n);
        let total_b: u128 = (0..n).map(|i| b.pairs(i)).sum();
        prop_assert_eq!(total_b, causal_pairs(0, seq));
    }

    /// The exchange planner never widens the spread beyond one KV slice,
    /// conserves total work, and keeps diagonals local — at every round of
    /// every geometry.
    #[test]
    fn exchange_plan_invariants(
        p in 2usize..=8,
        mult in 1usize..=4,
        t in 0usize..32,
        len_pow in 4u32..=10,
    ) {
        let n = p * mult;
        let l = 1u64 << len_pow;
        let slices = steady_round_slices(p, n, t % n);
        let plan = plan_round(&slices, l);
        let unit = (l as u128) * (l as u128);
        prop_assert!(plan.spread() <= unit, "spread {} > {}", plan.spread(), unit);
        let raw: u128 = slices.iter().map(|s| {
            let j = s.unwrap() as u128;
            j * unit + (l as u128 * (l as u128 + 1)) / 2
        }).sum();
        let planned: u128 = plan.load.iter().sum();
        prop_assert_eq!(raw, planned);
        for task in &plan.tasks {
            if task.diagonal {
                prop_assert_eq!(task.q_owner, task.executor);
            }
        }
    }

    /// Eq. 2's closed form respects its own bound everywhere.
    #[test]
    fn theta_respects_bound(p in 1usize..=32, mult in 1usize..=8) {
        let n = p * mult;
        prop_assert!(theta_formula(p, n) <= theta_bound(p, n) + 1e-12);
        prop_assert!(theta_formula(p, n) <= 2.0);
    }

    /// Table 2 closed forms equal exact schedule walks for the slicing
    /// schemes, for any geometry.
    #[test]
    fn slimpipe_memory_formula_equals_walk(
        p in 1usize..=6,
        m in 1usize..=4,
        mult in 1usize..=4,
        v in 1usize..=3,
    ) {
        let n = p * mult;
        let sched = slimpipe::core::interleaved::generate(p, v, m, n).unwrap();
        let walk = measured_act_rel(&sched);
        let formula = act_memory_rel(Scheme::SlimPipe, p, m, n, v)
            .min(m as f64 * n as f64 * v as f64 / (p * v * n) as f64);
        prop_assert!((walk - formula).abs() < 1e-9, "walk {walk} vs formula {formula}");
    }

    /// Uniform slicing imbalance is exactly the (2n-1):1 arithmetic
    /// progression the paper describes, for large slices.
    #[test]
    fn uniform_imbalance_approaches_2n_minus_1(n in 2usize..=12) {
        let s = Slicing::uniform(n as u64 * 8192, n);
        let imb = s.imbalance();
        let expect = 2.0 * n as f64 - 1.0;
        prop_assert!((imb - expect).abs() / expect < 0.01);
    }
}

/// `Slicing::pair_balanced` edge cases, exhaustively over every
/// `(seq ≤ 64, n ≤ seq)`: boundaries must be strictly monotone (no empty
/// slice, even at `n == seq` where every slice is one token), cover the
/// sequence exactly, and the per-slice pair counts must partition the
/// sequence's total causal pairs — the invariance the exchange planner and
/// the executor's range indexing both rest on.
#[test]
fn pair_balanced_is_a_partition_for_every_small_geometry() {
    for seq in 1u64..=64 {
        for n in 1usize..=seq as usize {
            let s = Slicing::pair_balanced(seq, n);
            assert_eq!(s.n(), n, "seq={seq} n={n}");
            assert_eq!(s.bounds[0], 0, "seq={seq} n={n}");
            assert_eq!(*s.bounds.last().unwrap(), seq, "seq={seq} n={n}");
            assert!(
                s.bounds.windows(2).all(|w| w[0] < w[1]),
                "seq={seq} n={n}: bounds not strictly monotone: {:?}",
                s.bounds
            );
            let total: u128 = (0..n).map(|i| s.pairs(i)).sum();
            assert_eq!(total, causal_pairs(0, seq), "seq={seq} n={n}: pairs must partition");
            // Token coverage is exact too (lengths sum to seq).
            let tokens: u64 = (0..n).map(|i| s.len(i)).sum();
            assert_eq!(tokens, seq, "seq={seq} n={n}");
        }
    }
}

/// The ragged-aware `even` constructor over the same exhaustive domain:
/// lengths differ by at most one, earliest slices take the remainder, and
/// the partition is exact.
#[test]
fn even_slicing_is_near_uniform_for_every_small_geometry() {
    for seq in 1u64..=64 {
        for n in 1usize..=seq as usize {
            let s = Slicing::even(seq, n);
            assert!(s.bounds.windows(2).all(|w| w[0] < w[1]), "seq={seq} n={n}");
            assert_eq!(*s.bounds.last().unwrap(), seq, "seq={seq} n={n}");
            let lens: Vec<u64> = (0..n).map(|i| s.len(i)).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "seq={seq} n={n}: {lens:?}");
            assert!(
                lens.windows(2).all(|w| w[0] >= w[1]),
                "remainder must go to the earliest slices: {lens:?}"
            );
            if seq.is_multiple_of(n as u64) {
                assert_eq!(s, Slicing::uniform(seq, n), "seq={seq} n={n}");
            }
        }
    }
}
