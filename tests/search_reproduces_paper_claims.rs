//! Cross-crate integration: the configuration search must reproduce the
//! paper's qualitative end-to-end claims (§6.4) — who wins, and where the
//! feasibility walls sit.

use slimpipe::cluster::Cluster;
use slimpipe::model::ModelConfig;
use slimpipe::parallel::search::{best_config, SearchOptions, SearchOutcome};
use slimpipe::parallel::SystemKind;

const TOKENS: u64 = 4 << 20;

#[test]
fn deepspeed_has_no_config_at_512k_on_128_gpus() {
    // §6.4 verbatim: batch 8 too small for DP, UP capped by 8 query groups.
    let out = best_config(
        &ModelConfig::llama_70b(),
        SystemKind::DeepSpeed,
        128,
        512 * 1024,
        TOKENS,
        &Cluster::hopper_nvlink(),
        &SearchOptions::default(),
    );
    assert!(matches!(out, SearchOutcome::NoConfig), "{:?}", out.mfu());
}

#[test]
fn slimpipe_finds_configs_where_interleaving_breaks() {
    // At 512 GPUs / 512K the microbatch count per DP rank collapses; the
    // paper: SlimPipe keeps "quite high training efficiency with as few as
    // 2 microbatches". SlimPipe must find a config.
    let cluster = Cluster::hopper_nvlink();
    let out = best_config(
        &ModelConfig::llama_70b(),
        SystemKind::SlimPipe,
        512,
        512 * 1024,
        TOKENS,
        &cluster,
        &SearchOptions::default(),
    );
    let SearchOutcome::Found(e) = out else { panic!("SlimPipe must find a config") };
    assert!(e.mfu > 0.2, "mfu {}", e.mfu);
}

#[test]
fn slimpipe_beats_megatron_at_256k_on_128_gpus_llama70b() {
    // A representative Figure 12 cell (paper annotation: 1.32x).
    let cluster = Cluster::hopper_nvlink();
    let model = ModelConfig::llama_70b();
    let opts = SearchOptions::default();
    let slim = best_config(&model, SystemKind::SlimPipe, 128, 256 * 1024, TOKENS, &cluster, &opts);
    let mega = best_config(&model, SystemKind::MegatronLM, 128, 256 * 1024, TOKENS, &cluster, &opts);
    let (Some(s), Some(m)) = (slim.mfu(), mega.mfu()) else {
        panic!("both systems should find configs: {:?} {:?}", slim.mfu(), mega.mfu())
    };
    assert!(s > m, "SlimPipe {s:.3} must beat Megatron {m:.3}");
}

#[test]
fn slimpipe_advantage_grows_with_context() {
    // "SlimPipe demonstrates increasingly significant advantages when
    // training with longer context lengths."
    let cluster = Cluster::hopper_nvlink();
    let model = ModelConfig::llama_70b();
    let opts = SearchOptions::default();
    let speedup = |seq_k: u64| -> f64 {
        let s = best_config(&model, SystemKind::SlimPipe, 128, seq_k * 1024, TOKENS, &cluster, &opts);
        let m = best_config(&model, SystemKind::MegatronLM, 128, seq_k * 1024, TOKENS, &cluster, &opts);
        match (s.mfu(), m.mfu()) {
            (Some(a), Some(b)) => a / b,
            (Some(_), None) => f64::INFINITY, // Megatron OOM counts as a win
            _ => 0.0,
        }
    };
    let short = speedup(64);
    let long = speedup(512);
    assert!(long > short, "64K: {short:.3}x, 512K: {long:.3}x");
}

#[test]
fn deepspeed_works_at_short_context_and_scale_64k() {
    let out = best_config(
        &ModelConfig::llama_70b(),
        SystemKind::DeepSpeed,
        128,
        64 * 1024,
        TOKENS,
        &Cluster::hopper_nvlink(),
        &SearchOptions::default(),
    );
    assert!(matches!(out, SearchOutcome::Found(_)));
}
