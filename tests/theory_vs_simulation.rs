//! Cross-crate integration: the paper's closed-form theory (`slimpipe-core`)
//! must agree with exact schedule walks (`slimpipe-sched` generators) and
//! with the discrete-event simulator (`slimpipe-sim`) across a grid of
//! operating points.

use slimpipe::cluster::{Cluster, Efficiency};
use slimpipe::core::memory::measured_act_rel;
use slimpipe::core::theory::{act_memory_rel, bubble_fraction_ideal, eq1_accumulated, Scheme};
use slimpipe::model::{Checkpoint, ModelConfig};
use slimpipe::sim::cost::{CostModel, PipelineEnv};
use slimpipe::sim::engine::simulate;

fn env(model: ModelConfig, seq: u64, slim: bool) -> PipelineEnv {
    PipelineEnv {
        model,
        cluster: Cluster::hopper_nvlink(),
        eff: Efficiency::hopper(),
        tp: 8,
        cp: 1,
        ep: 1,
        seq,
        mb_seqs: None,
        slicing: slimpipe::core::SlicePolicy::Uniform,
        ckpt: Checkpoint::Full,
        exchange: slim,
        early_kv: true,
        vocab_parallel: slim,
        comm_overlap: 0.5,
        pipeline_overlap: 0.0,
    }
}

#[test]
fn eq1_matches_schedule_walk_across_grid() {
    for p in [2usize, 4, 8] {
        for mult in [1usize, 2, 4] {
            let n = p * mult;
            let sched = slimpipe::core::schedule::generate(p, 4, n).unwrap();
            let measured = measured_act_rel(&sched);
            let eq1 = eq1_accumulated(p, n);
            assert!(
                (measured - eq1).abs() < 1e-9,
                "p={p} n={n}: walk {measured} vs Eq.1 {eq1}"
            );
        }
    }
}

#[test]
fn table2_activation_column_verified_by_walks() {
    let (p, m) = (4usize, 8usize);
    let cases: &[(Scheme, usize, usize)] =
        &[(Scheme::GPipe, 1, 1), (Scheme::OneFOneB, 1, 1), (Scheme::TeraPipe, 8, 1)];
    for &(s, n, v) in cases {
        let sched = match s {
            Scheme::GPipe => slimpipe::sched::gpipe::generate(p, m).unwrap(),
            Scheme::OneFOneB => slimpipe::sched::onefoneb::generate(p, m).unwrap(),
            Scheme::TeraPipe => slimpipe::sched::terapipe::generate(p, m, n).unwrap(),
            _ => unreachable!(),
        };
        let theory = act_memory_rel(s, p, m, n, v);
        let walk = measured_act_rel(&sched);
        assert!((theory - walk).abs() < 1e-9, "{s:?}");
    }
}

#[test]
fn simulated_warmup_bubble_tracks_closed_form_for_1f1b() {
    // With one uniform pass cost, 1F1B's bubble is (p-1)/(m+p-1); the
    // closed form in Table 2 is the (p-1)/m approximation. The simulator
    // must land between/near them.
    let model = ModelConfig::llama_13b();
    for (p, m) in [(4usize, 8usize), (8, 16)] {
        let sched = slimpipe::sched::onefoneb::generate(p, m).unwrap();
        let e = env(model.clone(), 65_536, false);
        let r = simulate(&CostModel::new(&sched, &e));
        let exact = (p as f64 - 1.0) / (m as f64 + p as f64 - 1.0);
        assert!(
            (r.bubble_fraction - exact).abs() < 0.12,
            "p={p} m={m}: sim {} vs closed {exact}",
            r.bubble_fraction
        );
    }
}

#[test]
fn slimpipe_bubble_shrinks_superlinearly_with_slices() {
    // §4.1.3: "the bubbles shrink super-linearly due to the causal
    // attention mechanism" — doubling n should cut the simulated bubble by
    // more than half at long context when exchange keeps loads balanced.
    let model = ModelConfig::llama_13b();
    let p = 4;
    let mut prev: Option<f64> = None;
    for n in [4usize, 8, 16] {
        let sched = slimpipe::core::schedule::generate(p, 2, n).unwrap();
        let e = env(model.clone(), 262_144, true);
        let r = simulate(&CostModel::new(&sched, &e));
        if let Some(pb) = prev {
            assert!(
                r.bubble_fraction < pb,
                "n={n}: bubble {} did not shrink from {pb}",
                r.bubble_fraction
            );
        }
        prev = Some(r.bubble_fraction);
    }
    // And the ideal closed form agrees on the trend.
    assert!(
        bubble_fraction_ideal(Scheme::SlimPipe, p, 2, 16, 1)
            < bubble_fraction_ideal(Scheme::SlimPipe, p, 2, 4, 1)
    );
}

#[test]
fn memory_ordering_holds_in_simulation_for_every_context() {
    // Figure 14's ordering: SlimPipe < 1F1B < interleaved, at every length.
    let model = ModelConfig::llama_13b();
    for seq in [32u64 * 1024, 131_072, 524_288] {
        let slim_sched = slimpipe::core::schedule::generate(4, 4, 8).unwrap();
        let ofob = slimpipe::sched::onefoneb::generate(4, 4).unwrap();
        let inter = slimpipe::sched::interleaved::generate(4, 2, 4).unwrap();
        let e_slim = env(model.clone(), seq, true);
        let e_base = env(model.clone(), seq, false);
        let peak = |sched: &slimpipe::sched::Schedule, e: &PipelineEnv| {
            (0..4)
                .map(|d| slimpipe::sim::memory::device_peak_bytes(sched, e, d))
                .fold(0.0, f64::max)
        };
        let slim = peak(&slim_sched, &e_slim);
        let base = peak(&ofob, &e_base);
        let int = peak(&inter, &e_base);
        assert!(slim < base, "seq={seq}: slim {slim} vs 1f1b {base}");
        assert!(base < int, "seq={seq}: 1f1b {base} vs interleaved {int}");
    }
}
